"""Tests for query graphs, spanning trees, and matching orders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.graph.generators import random_connected_query
from repro.graph.graph import Graph
from repro.ldbc.queries import all_queries
from repro.query.ordering import (
    all_connected_orders,
    ceci_style_order,
    cfl_style_order,
    daf_style_order,
    initial_candidate_counts,
    is_connected_order,
    path_based_order,
    random_connected_order,
    tree_compatible_order,
    validate_order,
)
from repro.query.query_graph import MAX_QUERY_VERTICES, QueryGraph, as_query
from repro.query.spanning_tree import build_bfs_tree, choose_root


def square_query() -> Graph:
    """4-cycle with a chord: 0-1-2-3-0 plus 0-2."""
    return Graph.from_edges(
        4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)], [0, 1, 0, 1]
    )


class TestQueryGraph:
    def test_wraps_and_validates(self):
        q = QueryGraph(square_query())
        assert q.num_vertices == 4
        assert q.num_edges == 5

    def test_rejects_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)], [0] * 4)
        with pytest.raises(QueryError, match="connected"):
            QueryGraph(g)

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            QueryGraph(Graph.from_edges(0, [], []))

    def test_rejects_oversized(self):
        n = MAX_QUERY_VERTICES + 1
        edges = [(i, i + 1) for i in range(n - 1)]
        with pytest.raises(QueryError, match="limit"):
            QueryGraph(Graph.from_edges(n, edges, [0] * n))

    def test_accessors(self):
        q = QueryGraph(square_query())
        assert q.neighbors(0) == (1, 2, 3)
        assert q.degree(0) == 3
        assert q.has_edge(0, 2)
        assert not q.has_edge(1, 3)
        assert (0, 2) in q.edges()

    def test_as_query_idempotent(self):
        q = QueryGraph(square_query())
        assert as_query(q) is q
        assert isinstance(as_query(square_query()), QueryGraph)


class TestSpanningTree:
    def test_bfs_structure(self):
        t = build_bfs_tree(square_query(), root=0)
        assert t.root == 0
        assert t.parent[0] == -1
        assert t.bfs_order[0] == 0
        assert set(t.bfs_order) == {0, 1, 2, 3}

    def test_depths_consistent(self):
        t = build_bfs_tree(square_query(), root=0)
        for u in t.bfs_order[1:]:
            assert t.depth[u] == t.depth[t.parent[u]] + 1

    def test_tree_plus_non_tree_covers_query(self):
        q = as_query(square_query())
        t = build_bfs_tree(q, root=0)
        covered = {frozenset(e) for e in t.tree_edges()} | {
            frozenset(e) for e in t.non_tree_edges
        }
        assert covered == {frozenset(e) for e in q.edges()}

    def test_non_tree_orientation_bfs_first(self):
        t = build_bfs_tree(square_query(), root=0)
        rank = {u: i for i, u in enumerate(t.bfs_order)}
        for a, b in t.non_tree_edges:
            assert rank[a] < rank[b]

    def test_non_tree_neighbors(self):
        t = build_bfs_tree(square_query(), root=0)
        for a, b in t.non_tree_edges:
            assert b in t.non_tree_neighbors(a)
            assert a in t.non_tree_neighbors(b)

    def test_leaves_and_paths(self):
        t = build_bfs_tree(square_query(), root=0)
        paths = t.root_to_leaf_paths()
        assert all(p[0] == 0 for p in paths)
        assert {p[-1] for p in paths} == set(t.leaves())

    def test_is_ancestor(self):
        t = build_bfs_tree(square_query(), root=0)
        assert t.is_ancestor(0, 3)
        assert t.is_ancestor(2, 2)

    def test_invalid_root_rejected(self):
        with pytest.raises(QueryError):
            build_bfs_tree(square_query(), root=9)

    def test_choose_root_prefers_selective(self, micro_graph):
        # Root should minimise filtered-candidates / degree.
        for q in all_queries():
            root = choose_root(q.graph, micro_graph)
            counts = initial_candidate_counts(q.graph, micro_graph)
            qg = as_query(q.graph)
            score = counts[root] / max(1, qg.degree(root))
            best = min(
                counts[u] / max(1, qg.degree(u))
                for u in range(qg.num_vertices)
            )
            assert score == pytest.approx(best)


class TestOrders:
    @pytest.fixture(scope="class")
    def data(self, micro_graph):
        return micro_graph

    def test_is_connected_order(self):
        q = square_query()
        assert is_connected_order(q, (0, 1, 2, 3))
        assert not is_connected_order(q, (1, 3, 0, 2))
        assert not is_connected_order(q, (0, 1, 2))
        assert not is_connected_order(q, (0, 1, 1, 2))

    def test_validate_order_raises(self):
        with pytest.raises(QueryError):
            validate_order(square_query(), (1, 3, 0, 2))

    def test_all_heuristics_produce_connected_orders(self, data):
        for q in all_queries():
            tree = build_bfs_tree(q.graph, choose_root(q.graph, data))
            for order in (
                path_based_order(tree, data),
                cfl_style_order(q.graph, data),
                daf_style_order(q.graph, data),
                ceci_style_order(q.graph, data),
            ):
                assert is_connected_order(q.graph, order)

    def test_path_based_covers_all_vertices(self, data):
        for q in all_queries():
            tree = build_bfs_tree(q.graph, choose_root(q.graph, data))
            order = path_based_order(tree, data)
            assert sorted(order) == list(range(q.num_vertices))
            assert order[0] == tree.root

    def test_tree_compatible_order_respects_parents(self, data):
        for q in all_queries():
            tree = build_bfs_tree(q.graph, choose_root(q.graph, data))
            order = tree_compatible_order(tree, key=lambda u: u)
            rank = {u: i for i, u in enumerate(order)}
            for u in tree.bfs_order[1:]:
                assert rank[tree.parent[u]] < rank[u]

    def test_random_orders_deterministic_by_seed(self):
        q = square_query()
        assert random_connected_order(q, seed=5) == random_connected_order(
            q, seed=5
        )

    def test_random_orders_vary(self):
        q = square_query()
        orders = {random_connected_order(q, seed=s) for s in range(20)}
        assert len(orders) > 1

    def test_all_connected_orders_small(self):
        q = Graph.from_edges(3, [(0, 1), (1, 2)], [0, 1, 2])
        orders = all_connected_orders(q)
        assert set(orders) == {(0, 1, 2), (1, 0, 2), (1, 2, 0), (2, 1, 0)}

    def test_all_connected_orders_all_valid(self):
        for order in all_connected_orders(square_query()):
            assert is_connected_order(square_query(), order)

    def test_all_connected_orders_size_cap(self):
        n = 12
        edges = [(i, i + 1) for i in range(n - 1)]
        g = Graph.from_edges(n, edges, [0] * n)
        with pytest.raises(QueryError, match="10-vertex"):
            all_connected_orders(g)

    def test_initial_candidate_counts(self, data):
        q = all_queries()[0]
        counts = initial_candidate_counts(q.graph, data)
        assert len(counts) == q.num_vertices
        assert all(c >= 0 for c in counts)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(3, 9))
    def test_random_connected_orders_property(self, seed, n):
        m = min(n * (n - 1) // 2, n + 2)
        q = random_connected_query(n, m, 3, seed=seed)
        order = random_connected_order(q, seed=seed)
        assert is_connected_order(q, order)
