"""End-to-end integration tests: every matching system in the repo must
produce the identical embedding set on shared workloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ceci import Ceci
from repro.baselines.cfl import CflMatch
from repro.baselines.daf import Daf
from repro.baselines.gpsm import GpSM
from repro.baselines.gsi import Gsi
from repro.baselines.reference import count_reference_embeddings
from repro.costs.gpu import GpuCostModel
from repro.cst.builder import build_cst
from repro.fpga.engine import FastEngine
from repro.graph.generators import random_connected_query, random_labeled_graph
from repro.host.cpu_matcher import count_cst_embeddings
from repro.host.runtime import FastRunner
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import all_queries
from repro.runtime.context import RunContext
from repro.runtime.registry import REGISTRY


BIG_GPU = GpuCostModel(memory_bytes=1 << 40)

#: One context across all cross-checks: cache keys hash graph content,
#: so reuse across workloads is safe and exercises the stage cache.
SHARED_CTX = RunContext()


def all_counts(query, data) -> dict[str, int]:
    """Embedding count from every system (failures excluded)."""
    out = {"reference": count_reference_embeddings(query, data)}
    out["cst_matcher"] = count_cst_embeddings(build_cst(query, data))
    out["fast_engine"] = FastEngine().run(
        build_cst(query, data)
    ).embeddings
    out["fast_runtime"] = FastRunner().run(query, data).embeddings
    cfl = CflMatch().run(query, data)
    if cfl.ok:
        out["cfl"] = cfl.embeddings
    daf, _ = Daf().run(query, data)
    if daf.ok:
        out["daf"] = daf.embeddings
    ceci, _ = Ceci().run(query, data)
    if ceci.ok:
        out["ceci"] = ceci.embeddings
    gpsm = GpSM(gpu=BIG_GPU).run(query, data)
    if gpsm.ok:
        out["gpsm"] = gpsm.embeddings
    gsi = Gsi(gpu=BIG_GPU).run(query, data)
    if gsi.ok:
        out["gsi"] = gsi.embeddings
    for name in REGISTRY.names():
        outcome = REGISTRY.run(name, query, data, ctx=SHARED_CTX)
        if outcome.ok:
            out[f"registry:{name}"] = outcome.embeddings
    return out


class TestCrossSystemAgreement:
    def test_benchmark_queries_on_micro(self, micro_graph):
        for q in all_queries():
            counts = all_counts(q.graph, micro_graph)
            assert len(set(counts.values())) == 1, (q.name, counts)

    @settings(max_examples=10, deadline=None)
    @given(
        data_seed=st.integers(0, 5000),
        query_seed=st.integers(0, 5000),
    )
    def test_random_workloads_property(self, data_seed, query_seed):
        data = random_labeled_graph(32, 130, 3, seed=data_seed)
        query = random_connected_query(5, 7, 3, seed=query_seed)
        counts = all_counts(query, data)
        assert len(set(counts.values())) == 1, counts


@pytest.mark.slow
class TestMiniScale:
    """Heavier cross-checks on the ~1.2K-vertex dataset."""

    def test_agreement_on_mini(self):
        data = load_dataset("DG-MINI", use_cache=False).graph
        for q in all_queries():
            ref = count_reference_embeddings(q.graph, data)
            fast = FastRunner().run(q.graph, data).embeddings
            ceci, _ = Ceci().run(q.graph, data)
            assert fast == ref, q.name
            if ceci.ok:
                assert ceci.embeddings == ref, q.name
