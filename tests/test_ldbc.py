"""Tests for the LDBC-SNB-like substrate: schema, generator, datasets,
queries."""

from __future__ import annotations

import pytest

from repro.common.errors import ExperimentError, GraphError, QueryError
from repro.graph.validation import validate_graph
from repro.ldbc.datasets import (
    DATASET_SCALES,
    MICRO_SCALES,
    dataset_names,
    load_dataset,
    load_scale,
)
from repro.ldbc.generator import LdbcGenerator, LdbcParams
from repro.ldbc.queries import QUERY_NAMES, all_queries, get_query
from repro.ldbc.schema import (
    EDGE_FAMILIES,
    LABEL_NAMES,
    NUM_LABELS,
    Label,
    allowed_label_pairs,
)


class TestSchema:
    def test_eleven_labels(self):
        assert NUM_LABELS == 11
        assert len(LABEL_NAMES) == 11

    def test_labels_dense(self):
        assert sorted(int(lab) for lab in Label) == list(range(11))

    def test_edge_families_reference_valid_labels(self):
        for fam in EDGE_FAMILIES:
            assert isinstance(fam.src, Label)
            assert isinstance(fam.dst, Label)

    def test_allowed_pairs_canonical(self):
        for a, b in allowed_label_pairs():
            assert a <= b


class TestGenerator:
    def test_deterministic(self):
        a = LdbcGenerator(seed=3).generate(0.1)
        b = LdbcGenerator(seed=3).generate(0.1)
        assert a.graph == b.graph

    def test_seed_changes_graph(self):
        a = LdbcGenerator(seed=3).generate(0.1)
        b = LdbcGenerator(seed=4).generate(0.1)
        assert a.graph != b.graph

    def test_structure_valid(self, micro_dataset):
        validate_graph(micro_dataset.graph)

    def test_all_labels_present(self, micro_dataset):
        assert micro_dataset.graph.num_labels() == NUM_LABELS

    def test_ranges_partition_vertices(self, micro_dataset):
        spans = sorted(
            (r.start, r.stop) for r in micro_dataset.ranges.values()
        )
        cursor = 0
        for start, stop in spans:
            assert start == cursor
            cursor = stop
        assert cursor == micro_dataset.graph.num_vertices

    def test_ranges_carry_correct_labels(self, micro_dataset):
        g = micro_dataset.graph
        for label, span in micro_dataset.ranges.items():
            for v in (span.start, span.stop - 1):
                assert g.label(v) == int(label)

    def test_edges_respect_schema(self, micro_dataset):
        g = micro_dataset.graph
        allowed = allowed_label_pairs()
        for u, v in g.edges():
            pair = (min(g.label(u), g.label(v)),
                    max(g.label(u), g.label(v)))
            assert pair in allowed, f"edge ({u},{v}) labels {pair}"

    def test_scale_grows_graph(self):
        gen = LdbcGenerator()
        small = gen.generate(0.1)
        large = gen.generate(0.3)
        assert large.graph.num_vertices > small.graph.num_vertices
        assert large.graph.num_edges > small.graph.num_edges

    def test_degree_skew(self, mini_dataset):
        g = mini_dataset.graph
        assert g.max_degree() > 8 * g.average_degree()

    def test_sf1_matches_paper_shape(self):
        info = LdbcGenerator().generate(1.0).summary()
        # Paper DG01 divided by 1000: 3.18K vertices, 17.24K edges.
        assert 2500 <= info["num_vertices"] <= 4500
        assert 12000 <= info["num_edges"] <= 22000
        assert 8.0 <= info["avg_degree"] <= 13.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(GraphError):
            LdbcGenerator().generate(0)

    def test_custom_params(self):
        params = LdbcParams(persons_per_sf=50, comments_per_sf=100,
                            posts_per_sf=60, forums_per_sf=20)
        d = LdbcGenerator(params=params, seed=1).generate(1.0)
        assert len(d.vertices_of(Label.PERSON)) == 50

    def test_summary_fields(self, micro_dataset):
        info = micro_dataset.summary()
        assert set(info) == {"name", "num_vertices", "num_edges",
                             "avg_degree", "max_degree", "num_labels"}


class TestDatasets:
    def test_registry_names(self):
        assert dataset_names() == ["DG01", "DG03", "DG10", "DG60"]
        assert DATASET_SCALES["DG60"] == 60.0
        assert "DG-MICRO" in MICRO_SCALES

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown dataset"):
            load_dataset("DG-HUGE")

    def test_cache_roundtrip(self, tmp_path):
        fresh = load_dataset("DG-MICRO", cache_dir=tmp_path)
        cached = load_dataset("DG-MICRO", cache_dir=tmp_path)
        assert fresh.graph == cached.graph
        assert fresh.ranges == cached.ranges

    def test_cache_writes_file(self, tmp_path):
        load_dataset("DG-MICRO", cache_dir=tmp_path)
        assert list(tmp_path.glob("DG-MICRO-*.npz"))

    def test_load_scale_known_name(self, tmp_path):
        d = load_scale(0.1, cache_dir=tmp_path)
        assert d.name == "DG-MICRO"

    def test_load_scale_custom(self, tmp_path):
        d = load_scale(0.2, cache_dir=tmp_path)
        assert d.name == "DG0.2"
        again = load_scale(0.2, cache_dir=tmp_path)
        assert d.graph == again.graph


class TestQueries:
    def test_nine_queries(self):
        assert len(QUERY_NAMES) == 9
        assert QUERY_NAMES == tuple(f"q{i}" for i in range(9))

    def test_lookup(self):
        q = get_query("q3")
        assert q.name == "q3"

    def test_unknown_query_rejected(self):
        with pytest.raises(QueryError, match="unknown query"):
            get_query("q99")

    def test_queries_connected_and_simple(self):
        for q in all_queries():
            assert q.graph.is_connected()
            validate_graph(q.graph)

    def test_queries_use_schema_labels(self):
        for q in all_queries():
            assert q.graph.label_set() <= set(range(NUM_LABELS))

    def test_query_sizes_match_paper_regime(self):
        for q in all_queries():
            assert 4 <= q.num_vertices <= 8

    def test_density_spread(self):
        """The set must span sparse and dense regimes (Figs. 11-12)."""
        extra = {
            q.name: q.num_edges - (q.num_vertices - 1)
            for q in all_queries()
        }
        assert max(extra.values()) >= 3      # a dense query exists
        assert min(extra.values()) >= 1      # every query has a cycle

    def test_queries_have_embeddings_on_micro(self, micro_graph):
        from repro.baselines.reference import count_reference_embeddings
        for q in all_queries():
            assert count_reference_embeddings(q.graph, micro_graph) > 0, (
                f"{q.name} has no embeddings on DG-MICRO"
            )
