"""Serving-layer tests: protocol, admission, breaker, and the server.

The acceptance properties of ISSUE 7:

* every request — malformed, shed, cancelled, or completed — gets
  exactly one response with one of the five terminal statuses;
* OK/DEGRADED counts are bit-identical to standalone runs of the same
  (backend, dataset, query) through the registry;
* overload sheds instead of crashing, and the whole status sequence is
  deterministic across reruns and worker counts;
* a server SIGKILLed mid-batch and restarted on the same state
  directory completes the in-flight jobs bit-identically without
  duplicating journal entries.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.errors import ProtocolError, ServeError
from repro.experiments.harness import tight_config
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import get_query
from repro.runtime.registry import REGISTRY
from repro.runtime.tracing import validate_prometheus_text
from repro.serve import (
    TERMINAL_STATUSES,
    AdmissionController,
    CircuitBreaker,
    CostEstimator,
    JobRequest,
    JobResponse,
    MatchServer,
    ServeConfig,
    parse_request,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def request_line(job_id, dataset="DG-MICRO", query="q0", **fields):
    return json.dumps(
        {"id": job_id, "dataset": dataset, "query": query, **fields}
    )


def serve(config, lines):
    """Run one request trace through a fresh server; return
    (report, ordered response payloads)."""
    server = MatchServer(config)
    sink = io.StringIO()
    report = server.run(lines, sink)
    server.close()
    responses = [json.loads(line)
                 for line in sink.getvalue().splitlines()]
    return report, responses


def micro_config(**overrides):
    defaults = dict(capacity_s=1.0, harness=tight_config())
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestProtocol:
    def test_parse_round_trip(self):
        job = parse_request(request_line(
            "r1", deadline_s=0.5, priority=2, backend="fast-share",
        ), seq=3)
        assert job == JobRequest(
            id="r1", dataset="DG-MICRO", query="q0",
            backend="fast-share", deadline_s=0.5, priority=2, seq=3,
        )
        assert JobRequest.from_dict(job.to_dict()) == job

    def test_backend_alias_canonicalized(self):
        job = parse_request(request_line("r1", backend="FAST"))
        assert job.backend == "fast-share"

    def test_default_backend_applied(self):
        job = parse_request(request_line("r1"),
                            default_backend="cfl")
        assert job.backend == "cfl"

    @pytest.mark.parametrize("line", [
        "not json",
        '["a", "list"]',
        '{"dataset": "DG-MICRO", "query": "q0"}',      # no id
        '{"id": "", "dataset": "DG-MICRO", "query": "q0"}',
        request_line("r", dataset="NOPE"),
        request_line("r", query="q99"),
        request_line("r", backend="nope"),
        request_line("r", deadline_s=-1),
        request_line("r", deadline_s=True),
        request_line("r", priority=1.5),
        request_line("r", surprise=1),
    ])
    def test_malformed_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_rejection_carries_parsed_id(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(request_line("r7", dataset="NOPE"))
        assert err.value.request_id == "r7"

    def test_response_requires_terminal_status(self):
        with pytest.raises(ValueError):
            JobResponse(id="r", status="RUNNING")

    def test_response_json_is_stable(self):
        a = JobResponse(id="r", status="OK", embeddings=3)
        b = JobResponse(id="r", status="OK", embeddings=3)
        assert a.to_json_line() == b.to_json_line()


class TestAdmission:
    def job(self, job_id="j", backend="fast-share"):
        return JobRequest(id=job_id, dataset="DG-MICRO", query="q0",
                          backend=backend)

    def test_admit_queue_shed_ladder(self):
        ctl = AdmissionController(
            capacity_s=0.002, queue_factor=1.0,
            estimator=CostEstimator(default_cost_s=0.001),
        )
        decisions = [ctl.decide(self.job(f"j{i}"))[0] for i in range(6)]
        # 2 admits fill capacity, 2 queue fill the headroom, rest shed.
        assert decisions == [
            "admit", "admit", "queue", "queue", "shed", "shed",
        ]
        assert ctl.decisions == {"admit": 2, "queue": 2, "shed": 2}

    def test_release_refills_the_bucket(self):
        ctl = AdmissionController(
            capacity_s=0.001, queue_factor=0.0,
            estimator=CostEstimator(default_cost_s=0.001),
        )
        decision, estimate = ctl.decide(self.job())
        assert decision == "admit"
        assert ctl.decide(self.job("j2"))[0] == "shed"
        ctl.release(estimate)
        assert ctl.decide(self.job("j3"))[0] == "admit"

    def test_release_never_goes_negative(self):
        ctl = AdmissionController()
        ctl.release(1.0)
        assert ctl.backlog_s == 0.0

    def test_observed_cost_replaces_default(self):
        estimator = CostEstimator(default_cost_s=0.001)
        ctl = AdmissionController(capacity_s=0.01, estimator=estimator)
        estimator.observe(self.job(), 0.5)
        assert ctl.decide(self.job())[0] == "shed"
        # A different backend still uses the default.
        assert ctl.decide(self.job("j2", backend="cfl"))[0] == "admit"

    def test_health_penalty_scales_capacity_down(self):
        class FlakyLedger:
            def penalty(self, index):
                return 3.0  # uniform: effective capacity /= 4

        ctl = AdmissionController(
            capacity_s=0.004, queue_factor=0.0,
            estimator=CostEstimator(default_cost_s=0.001),
            ledger=FlakyLedger(), num_devices=2,
        )
        assert ctl.effective_capacity_s() == pytest.approx(0.001)
        assert ctl.decide(self.job())[0] == "admit"
        assert ctl.decide(self.job("j2"))[0] == "shed"


class TestBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure(0)
        assert breaker.open_devices(2) == set()
        breaker.record_failure(0)
        assert breaker.open_devices(2) == {0}
        assert not breaker.all_open(2)
        assert breaker.device(0).opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0)
        breaker.record_success(0)
        breaker.record_failure(0)
        assert breaker.open_devices(1) == set()

    def test_cooldown_half_opens_then_probe_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_jobs=2)
        breaker.record_failure(0)
        assert breaker.open_devices(1) == {0}
        breaker.job_tick()
        assert breaker.open_devices(1) == {0}
        breaker.job_tick()
        # HALF_OPEN: not excluded — the next job is the probe.
        assert breaker.open_devices(1) == set()
        assert breaker.device(0).probes == 1
        breaker.record_success(0)
        assert breaker.device(0).state == "closed"
        assert breaker.device(0).closed == 1

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_jobs=2)
        breaker.record_failure(0)
        breaker.job_tick()
        breaker.job_tick()
        breaker.record_failure(0)  # probe fails
        assert breaker.device(0).state == "open"
        assert breaker.device(0).opened == 2
        breaker.job_tick()
        assert breaker.open_devices(1) == {0}  # cooldown restarted

    def test_all_open_requires_every_device(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(0)
        assert not breaker.all_open(2)
        breaker.record_failure(1)
        assert breaker.all_open(2)


class TestMatchServer:
    def test_every_request_gets_one_terminal_response(self):
        lines = [
            request_line("ok1"),
            request_line("dead", deadline_s=1e-7),
            "garbage",
            request_line("bad", dataset="NOPE"),
            request_line("ok2", backend="cfl"),
        ]
        report, responses = serve(micro_config(), lines)
        assert len(responses) == len(lines)
        assert report.total == len(lines)
        for response in responses:
            assert response["status"] in TERMINAL_STATUSES
        by_id = {r["id"]: r["status"] for r in responses}
        assert by_id["ok1"] == "OK"
        assert by_id["dead"] == "DEADLINE"
        assert by_id["bad"] == "FATAL"
        assert by_id[None] == "FATAL"

    def test_counts_bit_identical_to_standalone_match(self):
        from repro.experiments.harness import make_context

        report, responses = serve(micro_config(), [
            request_line("a"),
            request_line("b", query="q1", dataset="DG-MINI"),
            request_line("c", backend="cfl"),
        ])
        expectations = {
            "a": ("fast-share", "DG-MICRO", "q0"),
            "b": ("fast-share", "DG-MINI", "q1"),
            "c": ("cfl", "DG-MICRO", "q0"),
        }
        for response in responses:
            assert response["status"] == "OK"
            backend, dataset, query = expectations[response["id"]]
            out = REGISTRY.get(backend).run(
                make_context(tight_config()),
                get_query(query).graph,
                load_dataset(dataset).graph,
            )
            assert response["embeddings"] == out.embeddings
            assert response["modeled_seconds"] == out.seconds

    def test_batch_coalescing_hits_the_cst_cache(self):
        server = MatchServer(micro_config())
        sink = io.StringIO()
        server.run([request_line(f"r{i}") for i in range(4)], sink)
        stats = server.cache.stats()["cst"]
        assert stats["misses"] == 1
        assert stats["hits"] == 3

    def test_priority_orders_within_the_queue(self):
        report, responses = serve(micro_config(), [
            request_line("low", priority=0, query="q0"),
            request_line("high", priority=5, query="q1"),
            request_line("mid", priority=3, query="q2"),
        ])
        assert [r["id"] for r in responses] == ["high", "mid", "low"]

    def test_overload_sheds_instead_of_crashing(self):
        # ~5x capacity: the bucket fits 2 admits + 2 queued of the
        # 0.001s default estimate; the remaining 16 must shed cleanly.
        config = micro_config(capacity_s=0.002, queue_factor=1.0)
        lines = [request_line(f"r{i}") for i in range(20)]
        report, responses = serve(config, lines)
        assert report.total == 20
        assert report.statuses["SHED"] == 16
        assert report.statuses["OK"] == 4
        shed = [r for r in responses if r["status"] == "SHED"]
        assert all(r["admission"] == "shed" for r in shed)

    def test_status_sequence_deterministic_across_workers(self):
        lines = [
            request_line(f"r{i}", deadline_s=None if i % 3 else 0.0005)
            for i in range(9)
        ]
        sequences = []
        for workers in (1, 4):
            from dataclasses import replace

            config = micro_config(
                capacity_s=0.004,
                harness=replace(tight_config(), workers=workers),
            )
            _, responses = serve(config, list(lines))
            sequences.append(
                [(r["id"], r["status"], r.get("embeddings"))
                 for r in responses]
            )
        assert sequences[0] == sequences[1]

    def test_degraded_when_devices_die(self):
        from dataclasses import replace

        from repro.experiments.harness import make_context

        # Every device dead: the multi-FPGA run fails over, dies, and
        # the server reroutes to the exact-CPU fallback — counts exact.
        config = micro_config(
            harness=replace(
                tight_config(),
                fault_seed=3,
                fault_rates=(("device_dead", 1.0),),
            ),
        )
        _, responses = serve(config, [
            request_line("m1", backend="multi-fpga"),
        ])
        (response,) = responses
        assert response["status"] == "DEGRADED"
        assert response["backend"] == "cfl"
        assert response["degraded_reason"] == "fatal_device_fallback"
        baseline = REGISTRY.get("cfl").run(
            make_context(tight_config()),
            get_query("q0").graph, load_dataset("DG-MICRO").graph,
        )
        assert response["embeddings"] == baseline.embeddings

    def test_breaker_opens_then_reroutes_following_jobs(self):
        from dataclasses import replace

        config = micro_config(
            breaker_threshold=1, breaker_cooldown=50,
            harness=replace(
                tight_config(),
                fault_seed=3,
                fault_rates=(("device_dead", 1.0),),
            ),
        )
        server = MatchServer(config)
        sink = io.StringIO()
        report = server.run(
            [request_line(f"m{i}", backend="multi-fpga")
             for i in range(4)],
            sink,
        )
        responses = [json.loads(line)
                     for line in sink.getvalue().splitlines()]
        assert all(r["status"] == "DEGRADED" for r in responses)
        # The first job's pool-wide failure trips every breaker;
        # later jobs never touch the dead pool.
        assert responses[0]["degraded_reason"] == "fatal_device_fallback"
        assert all(r["degraded_reason"] == "breaker_reroute"
                   for r in responses[1:])
        assert report.breaker["0"]["state"] == "open"

    def test_metrics_exposition_is_valid(self):
        server = MatchServer(micro_config())
        sink = io.StringIO()
        server.run([request_line("r1"), "junk"], sink)
        text = server.metrics_text()
        validate_prometheus_text(text)
        assert 'fast_serve_jobs_total{status="OK"} 1' in text
        assert 'fast_serve_jobs_total{status="FATAL"} 1' in text

    def test_bad_fallback_backend_rejected_at_startup(self):
        with pytest.raises(ServeError):
            MatchServer(ServeConfig(fallback_backend="fast-share"))


class TestServeRecovery:
    def args(self, state_dir, requests, extra=()):
        return [sys.executable, "-m", "repro", "serve",
                "--capacity", "1.0",
                "--state-dir", str(state_dir),
                "--requests", str(requests), *extra]

    def spawn(self, state_dir, requests, crash_after=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_JOURNAL_CRASH_AFTER", None)
        if crash_after is not None:
            env["REPRO_JOURNAL_CRASH_AFTER"] = str(crash_after)
        return subprocess.run(
            self.args(state_dir, requests), capture_output=True,
            text=True, env=env, cwd=REPO_ROOT, timeout=300,
        )

    def test_sigkill_mid_batch_restart_completes_bit_identically(
        self, tmp_path
    ):
        requests = tmp_path / "trace.jsonl"
        requests.write_text("\n".join([
            request_line("k1", dataset="DG-MINI", query="q1"),
            request_line("k2", dataset="DG-MINI", query="q1"),
        ]) + "\n")

        baseline = self.spawn(tmp_path / "clean", requests)
        assert baseline.returncode == 0, baseline.stderr[-800:]
        expected = {
            json.loads(line)["id"]: json.loads(line)
            for line in baseline.stdout.splitlines()
        }

        state = tmp_path / "crashed"
        killed = self.spawn(state, requests, crash_after=8)
        assert killed.returncode == -signal.SIGKILL

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        resumed = self.spawn(state, empty)
        assert resumed.returncode == 0, resumed.stderr[-800:]
        recovered = {
            json.loads(line)["id"]: json.loads(line)
            for line in resumed.stdout.splitlines()
        }
        done_before = {
            json.loads(line)["id"]
            for line in killed.stdout.splitlines()
        }
        # Every request completed exactly once across both lifetimes,
        # and recovered jobs match the uninterrupted run bit-for-bit.
        assert done_before | set(recovered) == {"k1", "k2"}
        assert not (done_before & set(recovered))
        for job_id, response in recovered.items():
            assert response["embeddings"] == \
                expected[job_id]["embeddings"]
            assert response["modeled_seconds"] == \
                expected[job_id]["modeled_seconds"]
            assert response["status"] == expected[job_id]["status"]

        # The manifest holds exactly one done record per job.
        manifest = [
            json.loads(line)
            for line in (state / "manifest.jsonl").read_text()
            .splitlines()
        ]
        done = [r["id"] for r in manifest if r["type"] == "done"]
        assert sorted(done) == ["k1", "k2"]

        # Per-job journals hold no duplicated partition records.
        for journal in state.glob("job-*.jsonl"):
            records = [json.loads(line)
                       for line in journal.read_text().splitlines()]
            partitions = [r["index"] for r in records
                          if r.get("type") == "partition"]
            assert len(partitions) == len(set(partitions))

    def test_restart_on_clean_state_recovers_nothing(self, tmp_path):
        requests = tmp_path / "trace.jsonl"
        requests.write_text(request_line("c1") + "\n")
        state = tmp_path / "state"
        first = self.spawn(state, requests)
        assert first.returncode == 0, first.stderr[-800:]
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        second = self.spawn(state, empty)
        assert second.returncode == 0
        assert second.stdout.strip() == ""
        assert "recovered=0" in second.stderr


class TestServeCli:
    def test_corrupt_manifest_exits_8(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "state"
        state.mkdir()
        (state / "manifest.jsonl").write_text('{"type": "nope"}\n')
        requests = tmp_path / "r.jsonl"
        requests.write_text("")
        rc = main(["serve", "--state-dir", str(state),
                   "--requests", str(requests)])
        assert rc == 8
        err = capsys.readouterr().err
        assert "SERVE-FAILED" in err

    def test_unknown_backend_exits_8(self, tmp_path, capsys):
        from repro.cli import main

        requests = tmp_path / "r.jsonl"
        requests.write_text("")
        rc = main(["serve", "--backend", "nope",
                   "--requests", str(requests)])
        assert rc == 8

    def test_missing_requests_file_is_usage_error(self, capsys):
        from repro.cli import main

        rc = main(["serve", "--requests", "/nonexistent/r.jsonl"])
        assert rc == 2

    def test_requests_file_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        requests = tmp_path / "r.jsonl"
        requests.write_text(request_line("f1") + "\n")
        metrics = tmp_path / "metrics.txt"
        rc = main(["serve", "--capacity", "1.0",
                   "--requests", str(requests),
                   "--metrics-out", str(metrics)])
        assert rc == 0
        captured = capsys.readouterr()
        (response,) = [json.loads(line)
                       for line in captured.out.splitlines()]
        assert response["status"] == "OK"
        validate_prometheus_text(metrics.read_text())
        assert "served 1 requests" in captured.err
