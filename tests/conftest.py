"""Shared fixtures.

Heavy objects (datasets, CSTs) are session-scoped: generation is
deterministic, so sharing them across tests changes nothing about
isolation while keeping the suite fast.
"""

from __future__ import annotations

import pytest

from repro.costs.cpu import CpuCostModel
from repro.costs.resources import ResourceLimits
from repro.experiments.harness import HarnessConfig
from repro.fpga.config import FpgaConfig
from repro.graph.generators import random_labeled_graph
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import all_queries


@pytest.fixture(scope="session")
def micro_dataset():
    """The smallest LDBC-like dataset (~600 vertices)."""
    return load_dataset("DG-MICRO", use_cache=False)


@pytest.fixture(scope="session")
def mini_dataset():
    """A small LDBC-like dataset (~1.2K vertices)."""
    return load_dataset("DG-MINI", use_cache=False)


@pytest.fixture(scope="session")
def micro_graph(micro_dataset):
    return micro_dataset.graph


@pytest.fixture(scope="session")
def mini_graph(mini_dataset):
    return mini_dataset.graph


@pytest.fixture(scope="session")
def queries():
    """The nine benchmark queries."""
    return all_queries()


@pytest.fixture(scope="session")
def small_random_graph():
    """A dense-ish random labelled graph for correctness tests."""
    return random_labeled_graph(60, 240, 3, seed=11, connected=True)


@pytest.fixture()
def fpga_config():
    return FpgaConfig()


@pytest.fixture()
def tight_fpga_config():
    """A device whose limits force partitioning on micro datasets."""
    return FpgaConfig(bram_bytes=48 * 1024, batch_size=64, max_ports=16)


@pytest.fixture()
def cpu_cost():
    return CpuCostModel()


@pytest.fixture()
def limits():
    return ResourceLimits()


@pytest.fixture()
def harness_config():
    return HarnessConfig(use_cache=False)
