"""Shared-memory CST plane tests (ISSUE 8).

Two properties carry the whole design:

* **Descriptor round-trips are exact.** ``CST.from_descriptor(
  CST.to_descriptor(arena))`` preserves candidates, adjacency CSR
  content, ``size_bytes()``, and ``row_lens_array()`` bit-for-bit —
  including empty candidate sets and single-vertex partitions — so a
  process worker computes on precisely the structure the parent
  partitioned (hypothesis-tested over random graphs and queries).
* **Segments never leak.** The arena unlinks its ``/dev/shm`` entries
  on normal close, on exceptions mid-execute, at interpreter exit via
  the atexit guard, and — through the ``multiprocessing`` resource
  tracker — after a SIGKILL mid-run followed by ``--resume``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DeadlineExceededError
from repro.cst.builder import build_cst
from repro.cst.partition import PartitionLimits, partition_to_list
from repro.cst.structure import CST, CandidateAdjacency
from repro.fpga.config import FpgaConfig
from repro.graph.generators import (
    random_connected_query,
    random_labeled_graph,
)
from repro.graph.graph import Graph
from repro.ldbc.queries import get_query
from repro.query.ordering import path_based_order
from repro.query.query_graph import as_query
from repro.query.spanning_tree import build_bfs_tree
from repro.runtime.context import CancellationToken, RunContext
from repro.runtime.executor import ExecutorConfig
from repro.runtime.registry import REGISTRY
from repro.runtime.shm import ArrayRef, CstArena

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small device so DG-MICRO produces a stream of partitions.
STRESS_FPGA = FpgaConfig(bram_bytes=8 * 1024, batch_size=128,
                         max_ports=32)


def segment_exists(name: str) -> bool:
    """Probe a shared-memory segment by name (tracker-neutral).

    Attaching registers with the resource tracker on some Python
    versions; the registration is withdrawn immediately so the probe
    itself can never cause (or mask) an unlink.
    """
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(probe._name, "shared_memory")
    except Exception:
        pass
    probe.close()
    return True


def assert_roundtrip_exact(cst: CST, arena: CstArena) -> CST:
    """Round-trip ``cst`` through ``arena`` and assert exact equality."""
    back = CST.from_descriptor(arena.descriptor_for(cst))
    # The query/tree header crosses the boundary as one shared pickled
    # blob, so the reconstruction is an equal copy, not the same object.
    assert np.array_equal(back.query.graph.indptr, cst.query.graph.indptr)
    assert np.array_equal(back.query.graph.indices,
                          cst.query.graph.indices)
    assert np.array_equal(back.query.graph.labels, cst.query.graph.labels)
    assert back.tree.root == cst.tree.root
    assert back.tree.parent == cst.tree.parent
    assert back.tree.bfs_order == cst.tree.bfs_order
    assert back.tree_only == cst.tree_only
    assert len(back.candidates) == len(cst.candidates)
    for got, want in zip(back.candidates, cst.candidates):
        assert got.dtype == np.int64
        assert np.array_equal(got, want)
        assert not got.flags.writeable
    assert set(back.adjacency) == set(cst.adjacency)
    for edge, want in cst.adjacency.items():
        got = back.adjacency[edge]
        assert np.array_equal(got.indptr, want.indptr)
        assert np.array_equal(got.targets, want.targets)
        assert np.array_equal(got.row_lens_array(), want.row_lens_array())
    assert back.size_bytes() == cst.size_bytes()
    assert back.max_candidate_degree() == cst.max_candidate_degree()
    return back


class TestDescriptorRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(
        data_seed=st.integers(0, 10_000),
        query_seed=st.integers(0, 10_000),
        qn=st.integers(3, 6),
    )
    def test_random_cst_and_partitions_exact(self, data_seed, query_seed,
                                             qn):
        data = random_labeled_graph(40, 160, 3, seed=data_seed)
        qm = min(qn * (qn - 1) // 2, qn + 2)
        query = random_connected_query(qn, qm, 3, seed=query_seed)
        cst = build_cst(query, data)
        arena = CstArena()
        try:
            assert_roundtrip_exact(cst, arena)
            # Every Algorithm 2 partition round-trips exactly too —
            # partitions share unfiltered arrays with the parent, the
            # exact case the arena's identity memo covers.
            order = path_based_order(cst.tree, data)
            limits = PartitionLimits(
                max_bytes=max(cst.size_bytes() // 4, 64),
                max_degree=1 << 30,
            )
            try:
                parts, _ = partition_to_list(cst, order, limits)
            except Exception:
                parts = [cst]
            for part in parts:
                assert_roundtrip_exact(part, arena)
        finally:
            arena.close()

    def test_empty_candidate_sets_round_trip(self, micro_graph):
        cst = build_cst(get_query("q1").graph, micro_graph)
        empty = CST(
            query=cst.query,
            tree=cst.tree,
            candidates=[c[:0] for c in cst.candidates],
            adjacency={
                edge: CandidateAdjacency(
                    np.zeros(1, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
                for edge in cst.adjacency
            },
        )
        arena = CstArena()
        try:
            back = assert_roundtrip_exact(empty, arena)
            assert back.is_empty()
            # Empty arrays never occupy shared memory: only the
            # (1-element) indptr arrays get placed.
            desc = arena.descriptor_for(empty)
            assert all(ref.segment == "" for ref in desc.candidates)
        finally:
            arena.close()

    def test_single_vertex_partition_round_trips(self):
        g = Graph(
            np.array([0, 0], dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.array([0], dtype=np.int64),
        )
        q = as_query(g)
        cst = CST(
            query=q,
            tree=build_bfs_tree(q, 0),
            candidates=[np.array([5, 9, 12], dtype=np.int64)],
            adjacency={},
        )
        arena = CstArena()
        try:
            back = assert_roundtrip_exact(cst, arena)
            assert back.total_candidates() == 3
        finally:
            arena.close()

    def test_views_are_read_only(self, micro_graph):
        cst = build_cst(get_query("q0").graph, micro_graph)
        arena = CstArena()
        try:
            back = CST.from_descriptor(arena.descriptor_for(cst))
            with pytest.raises(ValueError):
                back.candidates[0][0] = 1
            edge = next(iter(back.adjacency))
            with pytest.raises(ValueError):
                back.adjacency[edge].targets[...] = 0
        finally:
            arena.close()

    def test_descriptor_pickles_small(self, micro_graph):
        import pickle

        cst = build_cst(get_query("q2").graph, micro_graph)
        arena = CstArena()
        try:
            desc = arena.descriptor_for(cst)
            payload = len(pickle.dumps(desc))
            full = len(pickle.dumps(cst))
            assert payload < full / 10, (payload, full)
        finally:
            arena.close()


class TestArenaAllocation:
    def test_place_dedupes_by_identity(self):
        arena = CstArena()
        try:
            arr = np.arange(100, dtype=np.int64)
            ref1 = arena.place(arr)
            before = arena.placed_bytes
            ref2 = arena.place(arr)
            assert ref2 is ref1
            assert arena.placed_bytes == before
            # An equal-but-distinct array is a distinct placement.
            ref3 = arena.place(arr.copy())
            assert ref3 != ref1
        finally:
            arena.close()

    def test_shared_partition_arrays_place_once(self, micro_graph):
        """Partitions share unfiltered arrays with their parent by
        reference; the arena must materialise each buffer once."""
        cst = build_cst(get_query("q1").graph, micro_graph)
        order = path_based_order(cst.tree, micro_graph)
        limits = PartitionLimits(
            max_bytes=max(cst.size_bytes() // 8, 64), max_degree=1 << 30
        )
        parts, _ = partition_to_list(cst, order, limits)
        assert len(parts) > 1
        shared = [
            u for u in range(cst.query.num_vertices)
            if all(p.candidates[u] is cst.candidates[u] for p in parts)
        ]
        arena = CstArena()
        try:
            descs = [arena.descriptor_for(p) for p in parts]
            for u in shared:
                refs = {d.candidates[u] for d in descs}
                assert len(refs) == 1
        finally:
            arena.close()

    def test_placements_are_aligned(self):
        arena = CstArena()
        try:
            for n in (3, 1, 7, 2):
                ref = arena.place(np.arange(n, dtype=np.int64))
                assert ref.offset % 8 == 0
        finally:
            arena.close()

    def test_empty_array_ref_views_fresh(self):
        ref = ArrayRef("", 0, (0,))
        view = ref.view()
        assert view.shape == (0,)
        assert view.dtype == np.int64
        assert not view.flags.writeable

    def test_oversized_array_gets_own_segment(self):
        arena = CstArena(chunk_bytes=1024)
        try:
            small = arena.place(np.arange(4, dtype=np.int64))
            big = arena.place(np.arange(1024, dtype=np.int64))
            assert big.segment != small.segment
            assert np.array_equal(
                big.view(), np.arange(1024, dtype=np.int64)
            )
        finally:
            arena.close()

    def test_place_after_close_raises(self):
        arena = CstArena()
        arena.close()
        with pytest.raises(RuntimeError):
            arena.place(np.arange(3, dtype=np.int64))


class TestArenaLifecycle:
    def test_close_unlinks_segments(self):
        arena = CstArena(chunk_bytes=1024)
        arena.place(np.arange(64, dtype=np.int64))
        arena.place(np.arange(1024, dtype=np.int64))
        names = arena.segment_names()
        assert names and all(segment_exists(n) for n in names)
        arena.close()
        assert arena.closed
        assert not any(segment_exists(n) for n in names)
        arena.close()  # idempotent

    def test_context_close_unlinks_owned_arena(self):
        ctx = RunContext()
        arena = ctx.ensure_arena()
        assert arena is not None
        arena.place(np.arange(32, dtype=np.int64))
        names = arena.segment_names()
        ctx.close()
        assert not any(segment_exists(n) for n in names)
        assert ctx.arena is None

    def test_context_close_spares_injected_arena(self):
        arena = CstArena()
        try:
            arena.place(np.arange(16, dtype=np.int64))
            ctx = RunContext()
            ctx.arena = arena  # injected: serving-layer style
            assert ctx.ensure_arena() is arena
            names = arena.segment_names()
            ctx.close()
            assert all(segment_exists(n) for n in names)
            assert not arena.closed
        finally:
            arena.close()

    def test_exception_mid_execute_unlinks_on_close(self, micro_graph):
        """A deadline cancellation mid-dispatch must not leak segments:
        the context's close (the CLI ``finally`` path) unlinks."""
        q = get_query("q1")
        baseline = REGISTRY.get("fast-sep").run(
            RunContext(fpga=STRESS_FPGA), q.graph, micro_graph
        )
        stages = baseline.metrics["stages"]
        pre_execute = sum(
            s.get("modeled_seconds", 0.0)
            for name, s in stages.items() if name != "execute"
        )
        budget = pre_execute + (baseline.seconds - pre_execute) * 0.5
        ctx = RunContext(
            fpga=STRESS_FPGA,
            executor=ExecutorConfig(workers=4, pool="process"),
            cancellation=CancellationToken(budget_s=budget),
        )
        with pytest.raises(DeadlineExceededError):
            REGISTRY.get("fast-sep").run(ctx, q.graph, micro_graph)
        assert ctx.arena is not None  # dispatch really started
        names = ctx.arena.segment_names()
        assert names
        ctx.close()
        assert not any(segment_exists(n) for n in names)

    def test_atexit_guard_sweeps_unclosed_arena(self):
        """A process that forgets ``close()`` still leaks nothing."""
        script = textwrap.dedent("""
            import numpy as np
            from repro.runtime.shm import CstArena
            arena = CstArena(chunk_bytes=1024)
            arena.place(np.arange(64, dtype=np.int64))
            print(" ".join(arena.segment_names()))
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-500:]
        names = proc.stdout.split()
        assert names
        assert not any(segment_exists(n) for n in names)


#: Child for the SIGKILL leak test: a journaled process-pool run that
#: the ``REPRO_JOURNAL_CRASH_AFTER`` hook SIGKILLs mid-execute.
KILL_CHILD = textwrap.dedent("""
    import sys

    from repro.experiments.harness import (
        HarnessConfig, make_context, tight_config,
    )
    from repro.ldbc.datasets import load_dataset
    from repro.ldbc.queries import get_query
    from repro.runtime.registry import REGISTRY

    journal, mode = sys.argv[1:3]
    config = tight_config(HarnessConfig(
        workers=4,
        pool="process",
        journal_path=journal if mode == "record" else None,
        resume_path=journal if mode == "resume" else None,
    ))
    ctx = make_context(config)
    try:
        out = REGISTRY.get("fast-sep").run(
            ctx, get_query("q1").graph, load_dataset("DG-MINI").graph
        )
    finally:
        ctx.close()
    print(out.embeddings)
""")


def _poll_shm_clean(before: set[str], timeout_s: float = 20.0) -> set[str]:
    """New ``psm_*`` entries under /dev/shm, polled until they drain.

    The resource tracker unlinks asynchronously after the SIGKILLed
    owner (and its PDEATHSIG-killed workers) disappear, so the drain
    is eventually-consistent, not immediate.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        leaked = {
            n for n in os.listdir("/dev/shm")
            if n.startswith("psm_") and n not in before
        }
        if not leaked or time.monotonic() >= deadline:
            return leaked
        time.sleep(0.25)


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs POSIX /dev/shm"
)
class TestSigkillLeaks:
    def test_sigkill_then_resume_leaks_nothing(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_JOURNAL_CRASH_AFTER"] = "8"
        before = set(os.listdir("/dev/shm"))
        killed = subprocess.run(
            [sys.executable, "-c", KILL_CHILD, str(journal), "record"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=300,
        )
        assert killed.returncode == -signal.SIGKILL, (
            killed.stderr[-800:]
        )
        leaked = _poll_shm_clean(before)
        assert not leaked, f"segments leaked after SIGKILL: {leaked}"

        env.pop("REPRO_JOURNAL_CRASH_AFTER")
        resumed = subprocess.run(
            [sys.executable, "-c", KILL_CHILD, str(journal), "resume"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr[-800:]
        leaked = _poll_shm_clean(before)
        assert not leaked, f"segments leaked after resume: {leaked}"


settings.register_profile("shm", deadline=None)
settings.load_profile("shm")
