"""Tests for graph serialisation."""

from __future__ import annotations

import pytest

from repro.common.errors import GraphError
from repro.graph.generators import random_labeled_graph
from repro.graph.io import load_npz, load_text, save_npz, save_text


@pytest.fixture()
def graph():
    return random_labeled_graph(25, 60, 4, seed=42)


class TestTextFormat:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_text(graph, path)
        assert load_text(path) == graph

    def test_header_written(self, graph, tmp_path):
        path = tmp_path / "g.txt"
        save_text(graph, path)
        first = path.read_text().splitlines()[0]
        assert first == f"t {graph.num_vertices} {graph.num_edges}"

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\nv 0 1\nv 1 2\ne 0 1\n")
        g = load_text(path)
        assert g.num_vertices == 2 and g.num_edges == 1

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("x 0 1\n")
        with pytest.raises(GraphError, match="unknown record"):
            load_text(path)

    def test_malformed_vertex_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0\n")
        with pytest.raises(GraphError, match="malformed vertex"):
            load_text(path)

    def test_non_dense_ids_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 1\nv 2 1\n")
        with pytest.raises(GraphError, match="dense"):
            load_text(path)

    def test_non_integer_vertex_field_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 1\nv one 2\n")
        with pytest.raises(GraphError, match=r"g\.txt:2: non-integer"):
            load_text(path)

    def test_non_integer_edge_field_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 1\nv 1 2\ne 0 x\n")
        with pytest.raises(GraphError, match=r"g\.txt:3: non-integer"):
            load_text(path)

    def test_float_edge_field_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 1\nv 1 2\ne 0 1.5\n")
        with pytest.raises(GraphError, match=r"g\.txt:3"):
            load_text(path)

    def test_edge_error_carries_line_number(self, tmp_path):
        # Endpoint 9 does not exist: the builder error must be
        # re-raised with the offending file location prepended.
        path = tmp_path / "g.txt"
        path.write_text("v 0 1\nv 1 2\ne 0 1\ne 0 9\n")
        with pytest.raises(GraphError, match=r"g\.txt:4"):
            load_text(path)


class TestNpzFormat:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert load_npz(path) == graph

    def test_roundtrip_with_check(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert load_npz(path, check=True) == graph

    def test_formats_agree(self, graph, tmp_path):
        t = tmp_path / "g.txt"
        n = tmp_path / "g.npz"
        save_text(graph, t)
        save_npz(graph, n)
        assert load_text(t) == load_npz(n)
