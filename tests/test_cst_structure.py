"""Tests for the CST data structure and CandidateAdjacency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import CSTError
from repro.cst.builder import build_cst
from repro.cst.structure import ENTRY_BYTES, CandidateAdjacency
from repro.ldbc.queries import get_query


def adjacency() -> CandidateAdjacency:
    """Rows: 0 -> [1, 3]; 1 -> []; 2 -> [0]."""
    return CandidateAdjacency.from_rows([
        np.array([1, 3]), np.array([], dtype=np.int64), np.array([0]),
    ])


class TestCandidateAdjacency:
    def test_from_rows(self):
        adj = adjacency()
        assert adj.num_rows == 3
        assert list(adj.row(0)) == [1, 3]
        assert adj.row_len(1) == 0
        assert adj.num_entries() == 3

    def test_contains(self):
        adj = adjacency()
        assert adj.contains(0, 3)
        assert not adj.contains(0, 2)
        assert not adj.contains(1, 0)

    def test_contains_batch_matches_scalar(self):
        adj = adjacency()
        src = np.array([0, 0, 1, 2, 2])
        dst = np.array([1, 2, 0, 0, 5])
        expected = np.array(
            [adj.contains(int(s), int(d)) for s, d in zip(src, dst)]
        )
        assert np.array_equal(adj.contains_batch(src, dst), expected)

    def test_contains_batch_empty_inputs(self):
        adj = adjacency()
        assert len(adj.contains_batch(np.array([], dtype=np.int64),
                                      np.array([], dtype=np.int64))) == 0

    def test_contains_batch_empty_adjacency(self):
        empty = CandidateAdjacency.from_rows([np.array([], dtype=np.int64)])
        out = empty.contains_batch(np.array([0]), np.array([0]))
        assert not out[0]

    def test_max_row_len(self):
        assert adjacency().max_row_len() == 2

    def test_transpose(self):
        adj = adjacency()
        rev = adj.transpose(4)
        assert rev.num_rows == 4
        assert list(rev.row(0)) == [2]
        assert list(rev.row(1)) == [0]
        assert list(rev.row(2)) == []
        assert list(rev.row(3)) == [0]

    def test_double_transpose_identity(self):
        adj = adjacency()
        again = adj.transpose(4).transpose(3)
        assert np.array_equal(again.indptr, adj.indptr)
        assert np.array_equal(again.targets, adj.targets)

    def test_bad_indptr_rejected(self):
        with pytest.raises(CSTError):
            CandidateAdjacency(np.array([0, 5]), np.array([1, 2]))


class TestCSTMetrics:
    @pytest.fixture(scope="class")
    def cst(self, micro_graph):
        return build_cst(get_query("q2").graph, micro_graph)

    def test_consistency(self, cst):
        cst.check_consistency()

    def test_size_accounts_all_entries(self, cst):
        offsets = sum(len(a.indptr) for a in cst.adjacency.values())
        expected = ENTRY_BYTES * (
            cst.total_candidates()
            + cst.total_adjacency_entries()
            + offsets
        )
        assert cst.size_bytes() == expected

    def test_max_degree_is_max_row(self, cst):
        assert cst.max_candidate_degree() == max(
            a.max_row_len() for a in cst.adjacency.values()
        )

    def test_position_roundtrip(self, cst):
        for u in range(cst.query.num_vertices):
            if cst.candidate_count(u) == 0:
                continue
            v = cst.vertex_at(u, 0)
            assert cst.position_of(u, v) == 0

    def test_position_of_missing(self, cst):
        assert cst.position_of(0, -5) == -1

    def test_has_candidate_edge_symmetric(self, cst):
        for (a, b), adj in cst.adjacency.items():
            for i in range(min(5, adj.num_rows)):
                for j in adj.row(i)[:5]:
                    assert cst.has_candidate_edge(a, i, b, int(j))
                    assert cst.has_candidate_edge(b, int(j), a, i)

    def test_not_empty(self, cst):
        assert not cst.is_empty()

    def test_repr(self, cst):
        assert "CST(" in repr(cst)

    def test_adjacency_rows_sorted_and_in_range(self, cst):
        for (a, b), adj in cst.adjacency.items():
            nb = cst.candidate_count(b)
            for i in range(adj.num_rows):
                row = adj.row(i)
                assert all(0 <= int(x) < nb for x in row)
                assert list(row) == sorted(set(int(x) for x in row))
