"""Run-journal, health-ledger, and resume-path tests.

The durability contract (ISSUE 4 / docs/robustness.md): a run journal
records every completed partition with a durable append, and a resumed
run replays journaled work bit-identically — same embedding counts,
same modeled seconds, same health report — while executing only the
remainder. The subprocess SIGKILL variants live in
``test_kill_resume.py``; this file covers the in-process semantics,
serialization round-trips, the device-health ledger's scheduling
policy, and the bounded stage cache.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import JournalError, JournalMismatchError
from repro.common.io import atomic_write_json, read_jsonl
from repro.fpga.config import FpgaConfig
from repro.fpga.report import KernelReport
from repro.host.cpu_matcher import CpuMatchCounters
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import get_query
from repro.runtime.context import RunContext, StageCache
from repro.runtime.executor import ExecutorConfig, PartitionOutcome
from repro.runtime.faults import FaultEvent, FaultPlan, HealthReport
from repro.runtime.journal import (
    DeviceHealth,
    DeviceHealthLedger,
    RunJournal,
    counters_from_dict,
    counters_to_dict,
    event_from_dict,
    outcome_from_record,
    outcome_to_record,
    report_from_dict,
    report_to_dict,
)
from repro.runtime.registry import REGISTRY

#: A device small enough that DG-MICRO runs produce several partitions.
STRESS_FPGA = FpgaConfig(bram_bytes=8 * 1024, batch_size=128,
                         max_ports=32)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("DG-MICRO")


def run_backend(name, dataset, query="q0", **ctx_kwargs):
    ctx = RunContext(**ctx_kwargs)
    out = REGISTRY.get(name).run(
        ctx, get_query(query).graph, dataset.graph
    )
    return out, ctx


def truncate_journal(path, keep_records):
    """Keep the header plus the first ``keep_records`` records."""
    lines = path.read_text().splitlines(keepends=True)
    path.write_text("".join(lines[: 1 + keep_records]))


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
counts = st.integers(min_value=0, max_value=10**9)

reports = st.builds(
    KernelReport,
    variant=st.sampled_from(["basic", "task", "sep", "dram"]),
    clock_mhz=st.sampled_from([150.0, 300.0]),
    compute_cycles=finite,
    load_cycles=finite,
    flush_cycles=finite,
    rounds=counts,
    total_partials=counts,
    total_edge_tasks=counts,
    total_pops=counts,
    embeddings=st.integers(min_value=0, max_value=10**6),
    num_csts=st.integers(min_value=0, max_value=100),
    buffer_peaks=st.dictionaries(
        st.integers(min_value=0, max_value=8), counts, max_size=4
    ),
    results=st.one_of(
        st.none(),
        st.lists(
            st.tuples(counts, counts, counts), max_size=5
        ),
    ),
)

events = st.builds(
    FaultEvent,
    kind=st.sampled_from([
        "pcie_error", "kernel_timeout", "device_unavailable",
        "bram_soft_error",
    ]),
    scope=st.tuples(st.just("partition"), st.integers(0, 50)),
    attempt=st.integers(0, 5),
    action=st.sampled_from(["retry", "repartition", "cpu_fallback"]),
    backoff_seconds=finite,
    device=st.one_of(st.none(), st.integers(0, 3)),
)

counters_st = st.builds(
    CpuMatchCounters,
    recursive_calls=counts,
    extensions_generated=counts,
    edge_checks=counts,
    embeddings=counts,
)

outcomes = st.builds(
    PartitionOutcome,
    reports=st.lists(reports, max_size=3),
    segments=st.lists(st.tuples(finite, finite), max_size=4),
    pcie_seconds=finite,
    overhead_seconds=finite,
    host_overhead_seconds=finite,
    backoff_wall_seconds=finite,
    events=st.lists(events, max_size=3),
    fallbacks=st.lists(
        st.tuples(
            st.lists(st.tuples(counts, counts), max_size=3),
            counters_st,
        ),
        max_size=2,
    ),
)


class TestRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(report=reports)
    def test_kernel_report(self, report):
        assert report_from_dict(report_to_dict(report)) == report

    @settings(max_examples=50, deadline=None)
    @given(event=events)
    def test_fault_event(self, event):
        assert event_from_dict(event.to_dict()) == event

    @settings(max_examples=50, deadline=None)
    @given(c=counters_st)
    def test_counters(self, c):
        assert counters_from_dict(counters_to_dict(c)) == c

    @settings(max_examples=50, deadline=None)
    @given(outcome=outcomes, index=st.integers(0, 100))
    def test_outcome_through_json(self, outcome, index):
        # Through an actual JSON encode/decode, as the journal does —
        # floats must round-trip exactly (repr shortest round-trip).
        record = json.loads(json.dumps(
            outcome_to_record(index, outcome, keep_results=True)
        ))
        assert record["index"] == index
        back = outcome_from_record(record)
        assert back == outcome


# ----------------------------------------------------------------------
# Journal file semantics
# ----------------------------------------------------------------------


class TestRunJournal:
    def test_fresh_write_then_resume_load(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.ensure_header("f" * 64, backend="fast-sep")
        journal.append({"type": "cpu", "index": 0, "embeddings": 3,
                        "counters": counters_to_dict(CpuMatchCounters()),
                        "results": None})
        journal.close()

        resumed = RunJournal(path, resume=True)
        assert resumed.fingerprint == "f" * 64
        assert set(resumed.cpu_records()) == {0}
        resumed.ensure_header("f" * 64)
        resumed.append({"type": "cpu", "index": 1, "embeddings": 0,
                        "counters": counters_to_dict(CpuMatchCounters()),
                        "results": None})
        resumed.close()
        assert len(read_jsonl(path)) == 3  # header + 2 records

    def test_resume_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            RunJournal(tmp_path / "absent.jsonl", resume=True)

    def test_resume_without_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "cpu", "index": 0}\n')
        with pytest.raises(JournalError, match="no header"):
            RunJournal(path, resume=True)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"type": "header", "version": 99, '
                        '"fingerprint": "x"}\n')
        with pytest.raises(JournalError, match="version"):
            RunJournal(path, resume=True)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.ensure_header("a" * 64)
        journal.close()
        resumed = RunJournal(path, resume=True)
        with pytest.raises(JournalMismatchError, match="refusing"):
            resumed.ensure_header("b" * 64)
        assert JournalMismatchError.verdict == "RESUME-MISMATCH"

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        journal = RunJournal(path)
        journal.ensure_header("c" * 64)
        journal.append({"type": "cpu", "index": 0, "embeddings": 1,
                        "counters": counters_to_dict(CpuMatchCounters()),
                        "results": None})
        journal.close()
        # Simulate a crash mid-append: a torn, unterminated record.
        with open(path, "a") as handle:
            handle.write('{"type": "cpu", "index": 1, "emb')

        resumed = RunJournal(path, resume=True)
        assert set(resumed.cpu_records()) == {0}
        resumed.ensure_header("c" * 64)
        resumed.append({"type": "cpu", "index": 1, "embeddings": 2,
                        "counters": counters_to_dict(CpuMatchCounters()),
                        "results": None})
        resumed.close()
        # The torn tail was truncated away, not spliced into the append.
        records = read_jsonl(path)
        assert [r["index"] for r in records if r["type"] == "cpu"] == [0, 1]

    def test_append_before_header_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "x.jsonl")
        with pytest.raises(JournalError, match="header"):
            journal.append({"type": "cpu"})


# ----------------------------------------------------------------------
# In-process resume equivalence
# ----------------------------------------------------------------------


def strip_wall(metrics_dict):
    """Metrics payload minus wall-clock times (machine-dependent) and
    journal bookkeeping (differs between fresh and resumed by design)."""

    def clean(obj):
        if isinstance(obj, dict):
            return {
                k: clean(v) for k, v in obj.items()
                if k not in ("wall_seconds", "journaled", "journal_path",
                             "resumed_partitions", "resumed_devices")
            }
        return obj

    return clean(metrics_dict)


class TestResumeEquivalence:
    @pytest.mark.parametrize("workers,buffers", [(1, 1), (3, 2)])
    def test_partial_resume_bit_identical(self, dataset, tmp_path,
                                          workers, buffers):
        def ctx_kwargs(journal):
            return dict(
                fpga=STRESS_FPGA,
                executor=ExecutorConfig(workers=workers, buffers=buffers),
                journal=journal,
            )

        path = tmp_path / "run.jsonl"
        baseline, _ = run_backend("fast-sep", dataset,
                                  fpga=STRESS_FPGA,
                                  executor=ExecutorConfig(
                                      workers=workers, buffers=buffers))
        full, ctx = run_backend("fast-sep", dataset,
                                **ctx_kwargs(RunJournal(path)))
        ctx.journal.close()
        assert full.embeddings == baseline.embeddings
        assert full.seconds == baseline.seconds

        # Crash after 2 completed partitions, then resume.
        truncate_journal(path, 2)
        resumed, rctx = run_backend(
            "fast-sep", dataset,
            **ctx_kwargs(RunJournal(path, resume=True)),
        )
        rctx.journal.close()
        assert resumed.embeddings == baseline.embeddings
        assert resumed.seconds == baseline.seconds
        assert strip_wall(resumed.metrics) == strip_wall(baseline.metrics)
        execute = resumed.metrics["stages"]["execute"]
        assert execute["resumed_partitions"] == 2

    def test_faulted_resume_continues_ladder(self, dataset, tmp_path):
        plan = FaultPlan(seed=11, rates={"kernel_timeout": 0.5,
                                         "pcie_error": 0.3})
        baseline, _ = run_backend("fast-sep", dataset,
                                  fpga=STRESS_FPGA, fault_plan=plan)
        assert baseline.health["fault_events"]  # the schedule fired

        path = tmp_path / "faulted.jsonl"
        full, ctx = run_backend("fast-sep", dataset, fpga=STRESS_FPGA,
                                fault_plan=plan,
                                journal=RunJournal(path))
        ctx.journal.close()
        truncate_journal(path, 3)
        resumed, rctx = run_backend(
            "fast-sep", dataset, fpga=STRESS_FPGA, fault_plan=plan,
            journal=RunJournal(path, resume=True),
        )
        rctx.journal.close()
        assert resumed.embeddings == baseline.embeddings
        assert resumed.seconds == baseline.seconds
        # The health report — including ladder events replayed from the
        # journal — must be bit-identical to the uninterrupted run.
        assert resumed.health == baseline.health

    def test_resume_rejects_different_run(self, dataset, tmp_path):
        path = tmp_path / "q0.jsonl"
        _, ctx = run_backend("fast-sep", dataset, query="q0",
                             fpga=STRESS_FPGA, journal=RunJournal(path))
        ctx.journal.close()
        with pytest.raises(JournalMismatchError):
            run_backend("fast-sep", dataset, query="q1",
                        fpga=STRESS_FPGA,
                        journal=RunJournal(path, resume=True))

    def test_multi_fpga_device_resume(self, dataset, tmp_path):
        baseline, _ = run_backend("multi-fpga", dataset,
                                  fpga=STRESS_FPGA)
        path = tmp_path / "multi.jsonl"
        _, ctx = run_backend("multi-fpga", dataset, fpga=STRESS_FPGA,
                             journal=RunJournal(path))
        ctx.journal.close()
        truncate_journal(path, 1)  # one device queue survived the crash
        resumed, rctx = run_backend(
            "multi-fpga", dataset, fpga=STRESS_FPGA,
            journal=RunJournal(path, resume=True),
        )
        rctx.journal.close()
        assert resumed.embeddings == baseline.embeddings
        assert resumed.seconds == baseline.seconds
        execute = resumed.metrics["stages"]["execute"]
        assert execute["resumed_devices"] == 1


# ----------------------------------------------------------------------
# Device-health ledger
# ----------------------------------------------------------------------


def flaky_ledger(device=0, faults=40, launches=50):
    """A ledger whose history marks ``device`` as residency-flaky."""
    ledger = DeviceHealthLedger()
    stats = ledger.device(device)
    stats.runs = 10
    stats.launches = launches
    stats.faults = {"kernel_timeout": faults}
    return ledger


class TestDeviceHealthLedger:
    def test_empty_ledger_is_neutral(self):
        ledger = DeviceHealthLedger()
        assert ledger.penalty(0) == 0.0
        assert not ledger.flaky(0)
        assert ledger.delta_s_scale(0) == 1.0

    def test_fault_rate_and_penalty(self):
        ledger = flaky_ledger()
        assert ledger.penalty(0) == pytest.approx(0.8)
        assert ledger.flaky(0)
        assert ledger.delta_s_scale(0) == DeviceHealthLedger.DELTA_S_SHRINK

    def test_dead_runs_weigh_heavier(self):
        ledger = DeviceHealthLedger()
        stats = ledger.device(1)
        stats.runs = 4
        stats.dead_runs = 1
        assert ledger.penalty(1) == pytest.approx(
            DeviceHealthLedger.DEAD_WEIGHT * 0.25
        )

    def test_non_residency_faults_do_not_shrink_delta_s(self):
        ledger = DeviceHealthLedger()
        stats = ledger.device(0)
        stats.launches = 10
        stats.faults = {"pcie_error": 9}
        assert ledger.flaky(0)
        assert ledger.delta_s_scale(0) == 1.0

    def test_record_run_attributes_device_dead_to_dead_device(self):
        ledger = DeviceHealthLedger()
        health = HealthReport()
        health.mark_device(0, "dead")
        health.mark_device(1, "ok")
        health.record(FaultEvent(
            kind="device_dead", scope=("device", 0), attempt=0,
            action="failover", device=1,
        ))
        ledger.record_run(health)
        assert ledger.device(0).dead_runs == 1
        assert ledger.device(0).faults == {"device_dead": 1}
        assert ledger.device(1).faults == {}

    def test_record_run_skips_empty_reports(self):
        ledger = DeviceHealthLedger()
        ledger.record_run(HealthReport())
        assert ledger.devices == {}

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = flaky_ledger()
        ledger.save(path)
        back = DeviceHealthLedger.load(path)
        assert back.to_dict() == ledger.to_dict()
        assert back.penalty(0) == ledger.penalty(0)

    def test_load_missing_file_is_empty(self, tmp_path):
        ledger = DeviceHealthLedger.load(tmp_path / "none.json")
        assert ledger.devices == {}
        assert ledger.path == tmp_path / "none.json"

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "future.json"
        atomic_write_json(path, {"version": 99, "devices": {}})
        with pytest.raises(JournalError, match="version"):
            DeviceHealthLedger.load(path)

    def test_context_folds_run_into_ledger(self, dataset, tmp_path):
        path = tmp_path / "ledger.json"
        plan = FaultPlan(seed=11, rates={"kernel_timeout": 0.5,
                                         "pcie_error": 0.3})
        out, ctx = run_backend(
            "fast-sep", dataset, fpga=STRESS_FPGA, fault_plan=plan,
            health_ledger=DeviceHealthLedger(path),
        )
        assert out.health["fault_events"]
        assert path.exists()
        back = DeviceHealthLedger.load(path)
        assert back.device(0).launches > 0
        assert sum(back.device(0).faults.values()) == len(
            out.health["fault_events"]
        )


class TestLedgerSteering:
    def test_placement_shifts_away_from_flaky_device(self, dataset):
        clean, _ = run_backend("multi-fpga", dataset, fpga=STRESS_FPGA)
        sched = clean.metrics["stages"]["schedule"]
        clean_split = sched["csts_per_device"]
        assert clean_split[0] > 0  # min-load spreads over both devices

        steered, _ = run_backend(
            "multi-fpga", dataset, fpga=STRESS_FPGA,
            health_ledger=flaky_ledger(device=0),
        )
        ssched = steered.metrics["stages"]["schedule"]
        steered_split = ssched["csts_per_device"]
        # Device 0's inflated effective load shifts work to the healthy
        # device 1 — without changing the total count. Compare shares,
        # not raw counts: the ledger also pre-shrinks delta_S, so the
        # steered run has more (smaller) partitions overall.
        clean_share = clean_split[0] / sum(clean_split)
        steered_share = steered_split[0] / sum(steered_split)
        assert steered_share < clean_share
        assert steered.embeddings == clean.embeddings
        assert ssched["device_penalties"][0] > 0

    def test_degraded_device_pre_shrinks_delta_s(self, dataset):
        clean, _ = run_backend("fast-sep", dataset, fpga=STRESS_FPGA)
        shrunk, _ = run_backend(
            "fast-sep", dataset, fpga=STRESS_FPGA,
            health_ledger=flaky_ledger(device=0),
        )
        clean_parts = clean.metrics["stages"]["partition"]["num_partitions"]
        shrunk_parts = shrunk.metrics["stages"]["partition"]["num_partitions"]
        assert shrunk_parts > clean_parts  # halved delta_S → more pieces
        assert shrunk.embeddings == clean.embeddings
        sched = shrunk.metrics["stages"]["schedule"]
        assert sched["delta_s_scale"] == DeviceHealthLedger.DELTA_S_SHRINK


# ----------------------------------------------------------------------
# Bounded stage cache
# ----------------------------------------------------------------------


class TestStageCacheLru:
    def test_eviction_beyond_max_entries(self):
        cache = StageCache(max_entries=2)
        cache.get_or_build("cst", ("a",), lambda: 1)
        cache.get_or_build("cst", ("b",), lambda: 2)
        cache.get_or_build("cst", ("c",), lambda: 3)
        assert len(cache) == 2
        stats = cache.stats()["cst"]
        assert stats["evictions"] == 1
        assert stats["misses"] == 3

    def test_hit_refreshes_recency(self):
        cache = StageCache(max_entries=2)
        cache.get_or_build("cst", ("a",), lambda: 1)
        cache.get_or_build("cst", ("b",), lambda: 2)
        cache.get_or_build("cst", ("a",), lambda: 1)  # refresh "a"
        cache.get_or_build("cst", ("c",), lambda: 3)  # evicts "b"
        _, was_cached = cache.get_or_build("cst", ("a",), lambda: 99)
        assert was_cached
        _, was_cached = cache.get_or_build("cst", ("b",), lambda: 99)
        assert not was_cached  # "b" was the LRU victim

    def test_eviction_counts_per_namespace(self):
        cache = StageCache(max_entries=1)
        cache.get_or_build("cst", ("a",), lambda: 1)
        cache.get_or_build("partition", ("p",), lambda: 2)  # evicts cst
        stats = cache.stats()
        assert stats["cst"]["evictions"] == 1
        assert stats["partition"]["evictions"] == 0

    def test_eviction_counters_reach_metrics(self, dataset):
        ctx = RunContext(fpga=STRESS_FPGA,
                         cache=StageCache(max_entries=1))
        out = REGISTRY.get("fast-sep").run(
            ctx, get_query("q0").graph, dataset.graph
        )
        cst_stats = out.metrics["cache"]["cst"]
        assert "evictions" in cst_stats


class TestLedgerLocking:
    """record_and_save is a locked load→merge→save transaction, so
    concurrent processes folding runs into one ledger lose nothing."""

    def test_record_and_save_merges_with_disk_state(self, tmp_path):
        from repro.runtime.context import RunMetrics

        path = tmp_path / "ledger.json"
        # Two in-memory ledgers against the same path, each folding a
        # run: the second save must merge, not clobber, the first.
        for _ in range(2):
            ledger = DeviceHealthLedger(path)
            metrics = RunMetrics(backend="fast-sep")
            metrics.stage("execute").extra["num_csts"] = 5
            metrics.health.device_status[0] = "ok"
            ledger.record_and_save(metrics)
        back = DeviceHealthLedger.load(path)
        assert back.device(0).launches == 10
        assert back.device(0).runs == 2

    def test_record_and_save_requires_a_path(self):
        from repro.runtime.context import RunMetrics

        with pytest.raises(JournalError):
            DeviceHealthLedger().record_and_save(
                RunMetrics(backend="fast-sep")
            )

    def test_concurrent_processes_lose_no_runs(self, tmp_path):
        import subprocess
        import sys
        import textwrap
        from pathlib import Path

        path = tmp_path / "ledger.json"
        script = textwrap.dedent("""
            import sys
            from repro.runtime.context import RunMetrics
            from repro.runtime.journal import DeviceHealthLedger

            for _ in range(10):
                ledger = DeviceHealthLedger(sys.argv[1])
                metrics = RunMetrics(backend="fast-sep")
                metrics.stage("execute").extra["num_csts"] = 1
                metrics.health.device_status[0] = "ok"
                ledger.record_and_save(metrics)
        """)
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path)],
                env={"PYTHONPATH": repo_src, "PATH": "/usr/bin:/bin"},
            )
            for _ in range(3)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        back = DeviceHealthLedger.load(path)
        assert back.device(0).runs == 30
        assert back.device(0).launches == 30
