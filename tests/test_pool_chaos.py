"""Whole-pipeline chaos tests for the warm worker pool (ISSUE 9).

The acceptance property: SIGKILLing any pool worker at any seeded
point — or injecting stalls and shm loss — yields the same embedding
counts, modeled seconds, and health report as a fault-free serial run,
with zero leaked worker processes or ``/dev/shm`` segments. Host
faults are strictly wall-clock events; the modeled world cannot see
them.

In-process runs are safe because the pool's supervision absorbs the
worker SIGKILLs; the kill/resume and external-killer cases spawn real
subprocesses (a parent SIGKILL cannot be simulated in-process).
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.harness import (
    HarnessConfig,
    make_context,
    tight_config,
)
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import get_query
from repro.runtime.registry import REGISTRY
from repro.serve import MatchServer, ServeConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (backend, host-fault seed): one seed per FAST variant plus the
#: multi-FPGA runner, at default hostile rates (kills + stalls + shm
#: loss). The slow sweep below widens the seed coverage.
CHAOS_MATRIX = [
    ("fast-share", 7),
    ("fast-sep", 17),
    ("multi-fpga", 23),
]


def payload(out):
    return {
        "embeddings": out.embeddings,
        "modeled_seconds": out.seconds,
        "health": out.health,
    }


def run_once(backend, *, dataset="DG-MINI", query="q1", **overrides):
    config = tight_config(HarnessConfig(use_cache=False, **overrides))
    ctx = make_context(config)
    try:
        out = REGISTRY.get(backend).run(
            ctx, get_query(query).graph, load_dataset(dataset).graph
        )
    finally:
        ctx.close()
    return payload(out)


def chaos_kwargs(seed, **extra):
    kwargs = dict(
        pool="process",
        workers=3,
        host_fault_seed=seed,
        pool_watchdog_s=0.3,
    )
    kwargs.update(extra)
    return kwargs


def shm_segments():
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith("psm_")
        }
    except FileNotFoundError:  # pragma: no cover - no /dev/shm
        return set()


def assert_no_new_segments(before):
    leaked = shm_segments() - before
    deadline = time.time() + 5.0
    while leaked and time.time() < deadline:
        time.sleep(0.2)
        leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestSeededHostFaults:
    @pytest.mark.parametrize("backend,seed", CHAOS_MATRIX)
    def test_results_identical_to_fault_free(self, backend, seed):
        before = shm_segments()
        baseline = run_once(backend)
        chaotic = run_once(backend, **chaos_kwargs(seed))
        assert chaotic == baseline
        assert_no_new_segments(before)

    def test_chunked_ttl_run_is_identical_too(self):
        # Chunked dispatch, worker recycling, and host faults at once:
        # none of it may leak into the modeled world.
        baseline = run_once("fast-share")
        chaotic = run_once(
            "fast-share",
            **chaos_kwargs(7, task_chunk=4, pool_ttl=3),
        )
        assert chaotic == baseline

    def test_cold_pool_fallback_is_identical_too(self):
        # --cold-pool keeps the legacy per-stage executor; results
        # must match the warm pool and the serial baseline.
        baseline = run_once("fast-share")
        cold = run_once(
            "fast-share", pool="process", workers=3, warm_pool=False,
        )
        assert cold == baseline

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [3, 5, 11, 13, 29])
    def test_seed_sweep_fast_share(self, seed):
        baseline = run_once("fast-share")
        assert run_once("fast-share", **chaos_kwargs(seed)) == baseline


class TestExternalKiller:
    def test_sigkill_worker_mid_pipeline(self):
        baseline = run_once("fast-share")
        config = tight_config(HarnessConfig(
            use_cache=False, pool="process", workers=3,
        ))
        ctx = make_context(config)
        killed = []

        def assassinate():
            deadline = time.time() + 60.0
            while time.time() < deadline:
                pool = ctx.worker_pool
                if pool is not None:
                    pids = pool.worker_pids()
                    if pids:
                        try:
                            os.kill(pids[0], signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                        killed.append(pids[0])
                        return
                time.sleep(0.005)

        killer = threading.Thread(target=assassinate)
        killer.start()
        try:
            out = REGISTRY.get("fast-share").run(
                ctx, get_query("q1").graph,
                load_dataset("DG-MINI").graph,
            )
        finally:
            ctx.close()
            killer.join()
        assert killed, "pipeline finished before a worker was forked"
        assert payload(out) == baseline


#: Child for kill/resume-under-chaos: one backend run with a warm
#: process pool and seeded host faults, printing the comparison JSON.
CHILD_SCRIPT = textwrap.dedent("""
    import json
    import sys

    from repro.experiments.harness import (
        HarnessConfig, make_context, tight_config,
    )
    from repro.ldbc.datasets import load_dataset
    from repro.ldbc.queries import get_query
    from repro.runtime.registry import REGISTRY

    backend, journal, mode, host_seed, workers, pool = sys.argv[1:7]
    config = tight_config(HarnessConfig(
        use_cache=False,
        workers=int(workers),
        pool=pool,
        pool_watchdog_s=0.3,
        host_fault_seed=None if host_seed == "-" else int(host_seed),
        journal_path=journal if mode == "record" else None,
        resume_path=journal if mode == "resume" else None,
    ))
    ctx = make_context(config)
    out = REGISTRY.get(backend).run(
        ctx, get_query("q1").graph, load_dataset("DG-MINI").graph
    )
    ctx.close()
    print(json.dumps({
        "embeddings": out.embeddings,
        "modeled_seconds": out.seconds,
        "health": out.health,
    }, sort_keys=True))
""")


def run_child(backend, journal, mode, *, host_seed=None, workers=1,
              pool="thread", crash_after=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_JOURNAL_CRASH_AFTER", None)
    if crash_after is not None:
        env["REPRO_JOURNAL_CRASH_AFTER"] = str(crash_after)
    return subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, backend, str(journal),
         mode, "-" if host_seed is None else str(host_seed),
         str(workers), pool],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=300,
    )


class TestKillResumeUnderChaos:
    """A run SIGKILLed mid-execute *while host faults are firing*
    resumes bit-identically — the journal and the pool compose."""

    def test_resume_bit_identical_with_host_faults(self, tmp_path):
        before = shm_segments()
        journal = tmp_path / "chaos.jsonl"
        baseline = run_child("fast-sep", journal, "none")
        assert baseline.returncode == 0, baseline.stderr[-800:]

        killed = run_child(
            "fast-sep", journal, "record",
            host_seed=7, workers=3, pool="process", crash_after=5,
        )
        assert killed.returncode == -signal.SIGKILL, (
            f"expected SIGKILL, got rc={killed.returncode}: "
            f"{killed.stderr[-500:]}"
        )
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + 5  # header + durable records
        assert json.loads(lines[0])["type"] == "header"

        resumed = run_child(
            "fast-sep", journal, "resume",
            host_seed=7, workers=3, pool="process",
        )
        assert resumed.returncode == 0, resumed.stderr[-800:]
        assert resumed.stdout == baseline.stdout
        # The SIGKILLed parent's orphaned workers and arena segments
        # must be gone (parent-death tether + resource tracker).
        assert_no_new_segments(before)


def request_line(job_id, dataset="DG-MINI", query="q1", **fields):
    # DG-MINI/q1 under the tight device yields a real partition
    # stream; DG-MICRO runs single-partition and never forks workers.
    return json.dumps(
        {"id": job_id, "dataset": dataset, "query": query, **fields}
    )


class TestServeWarmPool:
    def serve_once(self, harness, lines):
        server = MatchServer(
            ServeConfig(capacity_s=100.0, harness=harness)
        )
        sink = io.StringIO()
        server.run(lines, sink)
        responses = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        return server, responses

    def test_batches_share_one_pool_of_workers(self):
        lines = [request_line(f"job-{i}") for i in range(4)]
        harness = tight_config(HarnessConfig(
            use_cache=False, pool="process", workers=2,
        ))
        server, responses = self.serve_once(harness, lines)
        try:
            assert [r["status"] for r in responses] == ["OK"] * 4
            pool = server._pool
            assert pool is not None and not pool.closed
            # Forked once for the whole trace: the whole point of a
            # warm pool under `repro serve`.
            assert pool.stats.spawned == harness.workers
            assert pool.stats.respawns == 0
        finally:
            server.close()
        assert server._pool is None
        assert pool.closed

    def test_serve_results_match_serial_server(self):
        lines = [request_line(f"job-{i}") for i in range(3)]
        _server, warm = self.serve_once(
            tight_config(HarnessConfig(
                use_cache=False, pool="process", workers=2,
            )),
            lines,
        )
        _server.close()
        _server2, serial = self.serve_once(
            tight_config(HarnessConfig(use_cache=False)), lines
        )
        _server2.close()
        keep = ("id", "status", "embeddings", "modeled_seconds")
        assert [
            {k: r.get(k) for k in keep} for r in warm
        ] == [
            {k: r.get(k) for k in keep} for r in serial
        ]

    def test_serve_survives_host_faults(self):
        lines = [request_line(f"job-{i}") for i in range(3)]
        _server, faulted = self.serve_once(
            tight_config(HarnessConfig(
                use_cache=False, pool="process", workers=2,
                host_fault_seed=7, pool_watchdog_s=0.3,
            )),
            lines,
        )
        _server.close()
        _server2, serial = self.serve_once(
            tight_config(HarnessConfig(use_cache=False)), lines
        )
        _server2.close()
        keep = ("id", "status", "embeddings", "modeled_seconds")
        assert [
            {k: r.get(k) for k in keep} for r in faulted
        ] == [
            {k: r.get(k) for k in keep} for r in serial
        ]
