"""Tests for the experiment harness and figure drivers.

Each driver runs at micro scale and is checked both for mechanical
soundness (rows, rendering) and for the paper's qualitative claims
(speedup directions and rough magnitudes).
"""

from __future__ import annotations

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.figures import (
    fig7_dram_vs_bram,
    fig8_partition_factor,
    fig9_partition_size,
    fig10_partition_time,
    fig11_task_parallelism,
    fig12_generator_separation,
    fig13_cpu_share,
    fig14_vs_baselines,
    fig15_matching_orders,
    fig16_scale_factor,
    fig17_edge_sampling,
)
from repro.experiments.harness import (
    ALGORITHMS,
    HarnessConfig,
    RunRow,
    check_agreement,
    make_runner,
    render_rows,
    run_grid,
    tight_config,
)
from repro.experiments.tables import table3_datasets

CFG = HarnessConfig(use_cache=False)


class TestHarness:
    def test_make_runner_all_algorithms(self, micro_graph, queries):
        q = queries[0].graph
        for name in ALGORITHMS:
            runner = make_runner(name, CFG)
            verdict, seconds, embeddings = runner(q, micro_graph)
            assert verdict in ("OK", "OOM", "INF", "OVERFLOW")
            if verdict == "OK":
                assert seconds >= 0
                assert embeddings >= 0

    def test_make_runner_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            make_runner("TURBO", CFG)

    def test_run_grid_shape(self):
        rows = run_grid(["FAST", "CECI"], ["DG-MICRO"], ["q0", "q4"], CFG)
        assert len(rows) == 4
        assert {r.algorithm for r in rows} == {"FAST", "CECI"}

    def test_grid_agreement(self):
        rows = run_grid(["FAST", "CFL", "DAF"], ["DG-MICRO"], ["q0"], CFG)
        check_agreement(rows)

    def test_agreement_detects_mismatch(self):
        rows = [
            RunRow("d", "q", "A", "OK", 1.0, 10),
            RunRow("d", "q", "B", "OK", 1.0, 11),
        ]
        with pytest.raises(ExperimentError, match="mismatch"):
            check_agreement(rows)

    def test_agreement_skips_failures(self):
        rows = [
            RunRow("d", "q", "A", "OK", 1.0, 10),
            RunRow("d", "q", "B", "OOM", 0.0, 0),
        ]
        check_agreement(rows)

    def test_render_rows(self):
        rows = [RunRow("d", "q", "A", "OK", 0.001, 10),
                RunRow("d", "q", "B", "OOM", 0.0, 0)]
        text = render_rows(rows, "t")
        assert "OOM" in text and "1.000" in text

    def test_tight_config_binds(self):
        tight = tight_config(CFG)
        assert tight.fpga.bram_bytes < CFG.fpga.bram_bytes
        assert tight.fpga.max_ports < CFG.fpga.max_ports


class TestTable3:
    def test_rows_and_render(self):
        rows, text = table3_datasets(["DG-MICRO"], CFG)
        assert len(rows) == 1
        assert rows[0][5] == 11  # labels
        assert "Table III" in text


class TestFigureDrivers:
    def test_fig7_speedup_shape(self):
        res = fig7_dram_vs_bram(["DG-MICRO"], config=CFG)
        speedups = [v for vals in res.raw["speedups"].values() for v in vals]
        # Paper: ~5x; our cycle model lands 3-6x per query.
        assert sum(speedups) / len(speedups) > 2.5
        assert res.render()

    def test_fig8_greedy_not_worse_than_large_k(self):
        res = fig8_partition_factor("DG-MICRO",
                                    config=tight_config(CFG))
        counts = {row[0]: row[1] for row in res.rows}
        assert counts["greedy"] <= counts["10"]
        assert res.render()

    def test_fig9_ratio_reported(self):
        res = fig9_partition_size(["DG-MICRO"], config=CFG)
        ratios = [row[4] for row in res.rows]
        assert all(r >= 0 for r in ratios)
        assert res.render()

    def test_fig10_avg_total_based(self):
        res = fig10_partition_time(["DG-MICRO"], config=CFG)
        avg_rows = [r for r in res.rows if r[1] == "AVG"]
        assert len(avg_rows) == 1
        assert avg_rows[0][4] > 0

    def test_fig11_improvement_within_theory(self):
        res = fig11_task_parallelism(["DG-MICRO"], config=CFG)
        ratios = res.raw["ratios"]
        # Eq. 2 / Eq. 3 is bounded by ~2; allow round-granularity slack.
        assert all(1.0 <= r <= 2.4 for r in ratios)

    def test_fig12_improvement_within_theory(self):
        res = fig12_generator_separation(["DG-MICRO"], config=CFG)
        ratios = res.raw["ratios"]
        assert all(1.0 <= r <= 1.9 for r in ratios)

    def test_fig13_delta_zero_is_baseline(self):
        res = fig13_cpu_share(["DG-MICRO"], deltas=(0.0, 0.1),
                              config=tight_config(CFG))
        accel = {(row[0], row[1]): row[2] for row in res.rows}
        assert accel[("DG-MICRO", 0.0)] == pytest.approx(1.0)

    def test_fig14_fast_wins_on_average(self):
        res = fig14_vs_baselines(["DG-MICRO"],
                                 algorithms=["CFL", "CECI", "FAST"],
                                 config=CFG)
        for name in ("CFL", "CECI"):
            values = res.raw["speedups"][name]
            assert sum(values) / len(values) > 1.0

    def test_fig15_best_not_worse_than_worst(self):
        res = fig15_matching_orders("DG-MICRO", query_names=["q0", "q2"],
                                    num_random_orders=3, config=CFG)
        for row in res.rows:
            best, avg, worst = row[4], row[5], row[6]
            assert best <= avg <= worst

    def test_fig16_time_grows_with_scale(self):
        res = fig16_scale_factor(scale_factors=(0.1, 0.3),
                                 query_names=["q0"], config=CFG)
        series = res.raw["fast_series"]["q0"]
        assert len(series) == 2
        (sf_a, t_a, e_a), (sf_b, t_b, e_b) = sorted(series)
        assert e_b > e_a
        assert t_b > t_a

    def test_fig17_rows_per_fraction(self):
        res = fig17_edge_sampling("DG-MICRO", fractions=(0.5, 1.0),
                                  query_names=["q0"], config=CFG)
        assert len(res.rows) == 2
        assert res.rows[0][2] < res.rows[1][2]  # |E| grows
