"""Tests for the CPU/GPU cost models and resource limits."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ModeledOutOfMemory,
    ModeledOverflow,
    ModeledTimeout,
)
from repro.costs.cpu import (
    CpuCostModel,
    OpCounters,
    ThreadedCostResult,
    balance_lpt,
)
from repro.costs.gpu import GpuCostModel, GpuRunStats
from repro.costs.resources import ResourceLimits


class TestOpCounters:
    def test_merge(self):
        a = OpCounters(recursive_calls=1, extensions=2, edge_checks=3)
        b = OpCounters(recursive_calls=10, intersection_elements=5)
        a.merge(b)
        assert a.recursive_calls == 11
        assert a.intersection_elements == 5
        assert a.edge_checks == 3

    def test_total_ops(self):
        c = OpCounters(recursive_calls=1, extensions=2, edge_checks=3,
                       intersection_elements=4, index_build_ops=5)
        assert c.total_ops() == 15


class TestCpuCostModel:
    def test_zero_counters_zero_time(self):
        assert CpuCostModel().seconds(OpCounters()) == 0.0

    def test_time_scales_with_ops(self):
        m = CpuCostModel()
        small = m.seconds(OpCounters(extensions=100))
        large = m.seconds(OpCounters(extensions=100_000))
        assert large == pytest.approx(1000 * small)

    def test_edge_check_grows_with_degree(self):
        m = CpuCostModel()
        c = OpCounters(edge_checks=1000)
        assert m.seconds(c, avg_degree=256.0) > m.seconds(c, avg_degree=4.0)

    def test_clock_scaling(self):
        c = OpCounters(extensions=10_000)
        slow = CpuCostModel(clock_ghz=1.0).seconds(c)
        fast = CpuCostModel(clock_ghz=2.0).seconds(c)
        assert slow == pytest.approx(2 * fast)


class TestLptBalance:
    def test_even_weights_balance(self):
        loads = balance_lpt([1.0] * 8, 4)
        assert loads == [2.0, 2.0, 2.0, 2.0]

    def test_straggler_limits_balance(self):
        loads = balance_lpt([100.0, 1.0, 1.0, 1.0], 4)
        assert max(loads) == 100.0

    def test_total_preserved(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        assert sum(balance_lpt(weights, 3)) == pytest.approx(sum(weights))

    def test_threaded_result_speedup(self):
        t = ThreadedCostResult(
            num_threads=4,
            per_thread_seconds=[1.0, 1.0, 1.0, 1.0],
            sync_overhead_fraction=0.0,
        )
        assert t.seconds == 1.0
        assert t.speedup_vs_serial == pytest.approx(4.0)

    def test_sync_overhead_applied(self):
        t = ThreadedCostResult(num_threads=2, per_thread_seconds=[1.0, 1.0],
                               sync_overhead_fraction=0.1)
        assert t.seconds == pytest.approx(1.1)

    def test_empty_thread_result(self):
        assert ThreadedCostResult(num_threads=2).seconds == 0.0


class TestGpuModel:
    def test_stage_roofline(self):
        m = GpuCostModel(launch_overhead_s=0.0)
        compute_bound = m.stage_seconds(1e12, 1.0)
        memory_bound = m.stage_seconds(1.0, 1e12)
        assert compute_bound > 0 and memory_bound > 0
        tiny = m.stage_seconds(1.0, 1.0)
        assert compute_bound > tiny and memory_bound > tiny

    def test_launch_overhead_floor(self):
        m = GpuCostModel()
        assert m.stage_seconds(0, 0) == pytest.approx(m.launch_overhead_s)

    def test_oom_check(self):
        m = GpuCostModel(memory_bytes=1000)
        with pytest.raises(ModeledOutOfMemory):
            m.check_fit(2000, "test table")
        m.check_fit(500, "fits")

    def test_run_stats_accumulate(self):
        m = GpuCostModel()
        stats = GpuRunStats()
        stats.add_stage(m, "a", 100, 200, 300)
        stats.add_stage(m, "b", 10, 20, 30)
        assert stats.peak_bytes == 300
        assert len(stats.stages) == 2
        assert stats.seconds == pytest.approx(
            sum(t for _n, t in stats.stages)
        )

    def test_run_stats_oom_before_timing(self):
        m = GpuCostModel(memory_bytes=100)
        stats = GpuRunStats()
        with pytest.raises(ModeledOutOfMemory):
            stats.add_stage(m, "big", 1, 1, 1000)


class TestResourceLimits:
    def test_memory_verdict(self):
        limits = ResourceLimits(host_memory_bytes=100)
        with pytest.raises(ModeledOutOfMemory):
            limits.check_memory(200, "x")
        limits.check_memory(50, "x")

    def test_time_verdict(self):
        limits = ResourceLimits(time_limit_seconds=1.0)
        with pytest.raises(ModeledTimeout):
            limits.check_time(2.0, "x")
        limits.check_time(0.5, "x")

    def test_counter_verdict(self):
        limits = ResourceLimits(counter_limit=1000)
        with pytest.raises(ModeledOverflow):
            limits.check_counter(2000, "x")
        limits.check_counter(999, "x")

    def test_default_scaling(self):
        limits = ResourceLimits()
        # 250 GB and 3 h scaled by 1/1000.
        assert limits.host_memory_bytes == 250 * 1024 * 1024
        assert limits.time_limit_seconds == pytest.approx(10.8)
        assert limits.counter_limit == 2**31 - 1
