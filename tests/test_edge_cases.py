"""Edge-case and failure-injection tests across the stack."""

from __future__ import annotations

from repro.baselines.reference import count_reference_embeddings
from repro.cst.builder import build_cst
from repro.cst.partition import PartitionLimits, partition_to_list
from repro.fpga.config import FpgaConfig
from repro.fpga.engine import FastEngine
from repro.graph.graph import Graph
from repro.host.cpu_matcher import count_cst_embeddings
from repro.host.runtime import FastRunner
from repro.ldbc.schema import Label
from repro.query.query_graph import QueryGraph


def person_graph(n: int, edges: list[tuple[int, int]]) -> Graph:
    return Graph.from_edges(n, edges, [int(Label.PERSON)] * n)


class TestSingleVertexQuery:
    """|V(q)| = 1: the degenerate but legal extreme."""

    def test_reference(self, micro_graph):
        q = Graph.from_edges(1, [], [int(Label.CITY)])
        cities = len(micro_graph.vertices_with_label(int(Label.CITY)))
        assert count_reference_embeddings(q, micro_graph) == cities

    def test_cst_matcher(self, micro_graph):
        q = Graph.from_edges(1, [], [int(Label.CITY)])
        cst = build_cst(q, micro_graph)
        assert count_cst_embeddings(cst) == count_reference_embeddings(
            q, micro_graph
        )

    def test_engine(self, micro_graph):
        q = Graph.from_edges(1, [], [int(Label.CITY)])
        cst = build_cst(q, micro_graph)
        rep = FastEngine().run(cst)
        assert rep.embeddings == count_reference_embeddings(q, micro_graph)

    def test_runtime(self, micro_graph):
        q = Graph.from_edges(1, [], [int(Label.CITY)])
        result = FastRunner(variant="sep").run(q, micro_graph)
        assert result.embeddings == count_reference_embeddings(
            q, micro_graph
        )


class TestSingleEdgeQuery:
    def test_edge_count_matches(self, micro_graph):
        q = Graph.from_edges(
            2, [(0, 1)], [int(Label.PERSON), int(Label.PERSON)]
        )
        # Each person-person edge yields two directed embeddings.
        got = FastRunner().run(q, micro_graph).embeddings
        assert got == count_reference_embeddings(q, micro_graph)
        assert got % 2 == 0


class TestBatchSizeExtremes:
    def test_batch_size_one(self, micro_graph):
        from repro.ldbc.queries import get_query
        q = get_query("q0")
        cst = build_cst(q.graph, micro_graph)
        cfg = FpgaConfig(batch_size=1)
        rep = FastEngine(cfg).run(cst)
        assert rep.embeddings == count_reference_embeddings(
            q.graph, micro_graph
        )
        assert max(rep.buffer_peaks.values()) <= 1

    def test_huge_batch(self, micro_graph):
        from repro.ldbc.queries import get_query
        q = get_query("q2")
        cst = build_cst(q.graph, micro_graph)
        cfg = FpgaConfig(batch_size=1 << 18, bram_bytes=1 << 30)
        rep = FastEngine(cfg).run(cst)
        assert rep.embeddings == count_reference_embeddings(
            q.graph, micro_graph
        )


class TestNoMatchWorkloads:
    def test_label_absent_counts_zero(self, micro_graph):
        q = Graph.from_edges(2, [(0, 1)], [int(Label.PERSON), 99])
        assert count_reference_embeddings(q, micro_graph) == 0
        assert FastRunner().run(q, micro_graph).embeddings == 0

    def test_structurally_impossible(self, micro_graph):
        # A CITY-CITY edge never exists in the schema.
        q = Graph.from_edges(2, [(0, 1)], [int(Label.CITY)] * 2)
        assert FastRunner().run(q, micro_graph).embeddings == 0

    def test_partition_of_empty_cst(self, micro_graph):
        q = Graph.from_edges(2, [(0, 1)], [int(Label.CITY)] * 2)
        cst = build_cst(q, micro_graph)
        parts, stats = partition_to_list(
            cst, (0, 1), PartitionLimits(max_bytes=10, max_degree=1)
        )
        assert parts == []
        assert stats.num_empty_skipped == 1


class TestAutomorphismHeavyWorkloads:
    """Highly symmetric queries stress injectivity handling."""

    def test_clique_query_on_clique(self):
        data = person_graph(
            5, [(i, j) for i in range(5) for j in range(i + 1, 5)]
        )
        query = person_graph(
            4, [(i, j) for i in range(4) for j in range(i + 1, 4)]
        )
        # 5P4 injective mappings = 120.
        assert FastRunner().run(query, data).embeddings == 120

    def test_star_query(self):
        data = person_graph(6, [(0, i) for i in range(1, 6)])
        query = person_graph(4, [(0, 1), (0, 2), (0, 3)])
        # Centre must map to the hub: 5*4*3 = 60.
        assert FastRunner().run(query, data).embeddings == 60

    def test_path_query_both_directions(self):
        data = person_graph(4, [(0, 1), (1, 2), (2, 3)])
        query = person_graph(3, [(0, 1), (1, 2)])
        # Paths of length 2 in a path of length 3: 2 centres x 2
        # orientations = 4.
        assert FastRunner().run(query, data).embeddings == 4


class TestPartitionWithNonTreeOrders:
    def test_partition_correct_under_random_order(self, micro_graph):
        from repro.host.cpu_matcher import cst_embeddings
        from repro.ldbc.queries import get_query
        from repro.query.ordering import random_connected_order

        q = get_query("q2")
        cst = build_cst(q.graph, micro_graph)
        ref = count_reference_embeddings(q.graph, micro_graph)
        for seed in range(3):
            order = random_connected_order(q.graph, seed=seed)
            limits = PartitionLimits(
                max_bytes=max(512, cst.size_bytes() // 5),
                max_degree=max(4, cst.max_candidate_degree() // 2),
            )
            parts, _ = partition_to_list(cst, order, limits)
            total = sum(len(cst_embeddings(p, order)) for p in parts)
            assert total == ref, (seed, order)


class TestQueryGraphGuards:
    def test_two_vertex_minimum_edge(self):
        q = QueryGraph(Graph.from_edges(2, [(0, 1)], [0, 1]))
        assert q.num_edges == 1

    def test_single_vertex_allowed(self):
        q = QueryGraph(Graph.from_edges(1, [], [3]))
        assert q.num_vertices == 1
        assert q.neighbors(0) == ()
