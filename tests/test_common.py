"""Tests for repro.common: errors, RNG derivation, table rendering."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.common.errors import (
    BufferOverflowError,
    CSTError,
    DeviceError,
    GraphError,
    ModeledOutOfMemory,
    ModeledOverflow,
    ModeledTimeout,
    PartitionError,
    QueryError,
    ReproError,
    ResourceExhausted,
    SchedulerError,
)
from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.common.tables import format_value, render_kv, render_table


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (GraphError, QueryError, CSTError, PartitionError,
                    DeviceError, BufferOverflowError, SchedulerError,
                    ResourceExhausted, ModeledOutOfMemory, ModeledTimeout,
                    ModeledOverflow):
            assert issubclass(exc, ReproError)

    def test_partition_error_is_cst_error(self):
        assert issubclass(PartitionError, CSTError)

    def test_buffer_overflow_is_device_error(self):
        assert issubclass(BufferOverflowError, DeviceError)

    def test_verdicts(self):
        assert ModeledOutOfMemory.verdict == "OOM"
        assert ModeledTimeout.verdict == "INF"
        assert ModeledOverflow.verdict == "OVERFLOW"

    def test_resource_exhausted_catchable(self):
        with pytest.raises(ResourceExhausted):
            raise ModeledTimeout("too long")


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_scope_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_order_sensitive(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_make_rng_reproducible(self):
        a = make_rng(5, "x").integers(0, 1 << 30, size=8)
        b = make_rng(5, "x").integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_make_rng_none_uses_default(self):
        a = make_rng(None, "x").integers(0, 1 << 30)
        b = make_rng(DEFAULT_SEED, "x").integers(0, 1 << 30)
        assert a == b

    def test_distinct_scopes_distinct_streams(self):
        a = make_rng(5, "x").integers(0, 1 << 62)
        b = make_rng(5, "y").integers(0, 1 << 62)
        assert a != b


class TestTables:
    def test_format_float(self):
        assert format_value(1.23456) == "1.235"

    def test_format_large_float_scientific(self):
        assert "e" in format_value(1.5e9)

    def test_format_tiny_float_scientific(self):
        assert "e" in format_value(1.5e-9)

    def test_format_nan_dash(self):
        assert format_value(float("nan")) == "-"

    def test_format_large_int_grouped(self):
        assert format_value(1234567) == "1,234,567"

    def test_format_bool_not_int(self):
        assert format_value(True) == "True"

    def test_render_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [10, 20]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_with_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_render_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [[1]])

    def test_render_kv(self):
        text = render_kv("head", [("k", 1.5)])
        assert "head" in text and "k: 1.500" in text


class TestFileLock:
    def test_lock_is_reentrant_across_sequential_uses(self, tmp_path):
        from repro.common.io import file_lock

        target = tmp_path / "data.json"
        for _ in range(3):
            with file_lock(target):
                pass
        assert (tmp_path / "data.json.lock").exists()

    def test_lock_serializes_read_modify_write(self, tmp_path):
        """Two processes hammering one counter under file_lock lose no
        increments — the satellite fix for the health-ledger race."""
        import subprocess
        import sys
        import textwrap
        from pathlib import Path

        target = tmp_path / "counter.json"
        target.write_text("0")
        script = textwrap.dedent("""
            import json, sys
            from pathlib import Path
            from repro.common.io import file_lock

            target = Path(sys.argv[1])
            for _ in range(int(sys.argv[2])):
                with file_lock(target):
                    value = json.loads(target.read_text())
                    target.write_text(json.dumps(value + 1))
        """)
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(target), "25"],
                env={"PYTHONPATH": repo_src, "PATH": "/usr/bin:/bin"},
            )
            for _ in range(3)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        assert json.loads(target.read_text()) == 75
