"""Tests for heterogeneous fleets and the SLR-aware scheduler."""

from __future__ import annotations

import pytest

from repro.baselines.reference import count_reference_embeddings
from repro.cst.builder import build_cst
from repro.experiments.harness import HarnessConfig, make_context
from repro.fpga.catalog import DeviceSpec, get_device
from repro.fpga.config import FpgaConfig
from repro.fpga.engine import FastEngine
from repro.host.multi_fpga import MultiFpgaRunner
from repro.ldbc.queries import get_query
from repro.runtime.context import RunContext
from repro.runtime.registry import REGISTRY
from repro.runtime.tracing import Tracer, trace_lanes


def tight_spec(part: str, cfg: FpgaConfig) -> DeviceSpec:
    """An in-memory catalog part around a hand-built config."""
    return DeviceSpec(
        part=part, display_name=part, family="test", memory="dram",
        pcie_gen=3, pcie_width=16, config=cfg, source="<test>",
    )


class TestSlrPenaltyModel:
    def _cst(self, micro_graph):
        q = get_query("q1")
        return q, build_cst(q.graph, micro_graph)

    def test_no_penalty_when_cst_fits_one_slr(self, micro_graph):
        q, cst = self._cst(micro_graph)
        size = cst.size_bytes()
        cfg = FpgaConfig(
            bram_bytes=4 * size,
            slr_count=2,
            slr_bram_bytes=(2 * size, 2 * size),
            slr_crossing_penalty_cycles=10.0,
        )
        rep = FastEngine(cfg).run(cst)
        assert rep.slr_crossing_cycles == 0.0

    def test_penalty_charged_when_cst_spans_slrs(self, micro_graph):
        q, cst = self._cst(micro_graph)
        size = cst.size_bytes()
        assert size > 64  # the split below needs room
        half = size // 2 + 32
        cfg = FpgaConfig(
            bram_bytes=2 * half,
            slr_count=2,
            slr_bram_bytes=(half, half),
            slr_crossing_penalty_cycles=10.0,
        )
        baseline = FastEngine(FpgaConfig()).run(cst)
        rep = FastEngine(cfg).run(cst)
        # Counts never depend on the SLR model; only modeled time does.
        assert rep.embeddings == baseline.embeddings
        assert rep.slr_crossing_cycles > 0.0
        expected = (
            10.0
            * cfg.slr_remote_fraction(size)
            * (rep.total_partials + rep.total_edge_tasks)
        )
        assert rep.slr_crossing_cycles == pytest.approx(expected)

    def test_penalty_is_part_of_total_cycles(self, micro_graph):
        q, cst = self._cst(micro_graph)
        size = cst.size_bytes()
        half = size // 2 + 32
        cfg = FpgaConfig(
            bram_bytes=2 * half,
            slr_count=2,
            slr_bram_bytes=(half, half),
            slr_crossing_penalty_cycles=10.0,
        )
        rep = FastEngine(cfg).run(cst)
        assert rep.total_cycles == pytest.approx(
            rep.compute_cycles + rep.load_cycles + rep.flush_cycles
            + rep.slr_crossing_cycles
        )

    def test_traced_crossing_span_ends_at_total(self, micro_graph):
        q, cst = self._cst(micro_graph)
        size = cst.size_bytes()
        half = size // 2 + 32
        cfg = FpgaConfig(
            bram_bytes=2 * half,
            slr_count=2,
            slr_bram_bytes=(half, half),
            slr_crossing_penalty_cycles=10.0,
        )
        rep = FastEngine(cfg, trace_modules=True).run(cst)
        crossing = [s for s in rep.module_spans if s[0] == "slr_crossing"]
        assert len(crossing) == 1
        _, start, end = crossing[0]
        assert end == pytest.approx(rep.total_cycles)
        assert end == max(e for _, _, e in rep.module_spans)

    def test_default_device_pays_nothing(self, micro_graph):
        q, cst = self._cst(micro_graph)
        rep = FastEngine(FpgaConfig(), trace_modules=True).run(cst)
        assert rep.slr_crossing_cycles == 0.0
        assert not any(s[0] == "slr_crossing" for s in rep.module_spans)


class TestHeterogeneousFleet:
    def test_fleet_counts_match_reference(self, micro_graph):
        for name in ("q1", "q5", "q6"):
            q = get_query(name)
            ref = count_reference_embeddings(q.graph, micro_graph)
            runner = MultiFpgaRunner(fleet="u200,u280x2")
            result = runner.run(q.graph, micro_graph)
            assert result.embeddings == ref, name

    def test_fleet_string_sets_pool(self, micro_graph):
        runner = MultiFpgaRunner(fleet="u200,u280x2")
        assert runner.num_devices == 3
        q = get_query("q1")
        result = runner.run(q.graph, micro_graph)
        assert [d.part for d in result.devices] == ["u200", "u280", "u280"]

    def test_fleet_overrides_num_devices(self):
        runner = MultiFpgaRunner(num_devices=7, fleet="u50x2")
        assert runner.num_devices == 2

    def test_homogeneous_pool_has_no_part_labels(self, micro_graph):
        runner = MultiFpgaRunner(num_devices=2)
        result = runner.run(get_query("q1").graph, micro_graph)
        assert all(d.part is None for d in result.devices)

    def test_fleet_of_explicit_specs(self, micro_graph):
        fleet = (get_device("u200"), get_device("u50"))
        runner = MultiFpgaRunner(fleet=fleet)
        q = get_query("q2")
        result = runner.run(q.graph, micro_graph)
        assert result.embeddings == count_reference_embeddings(
            q.graph, micro_graph
        )
        assert [d.part for d in result.devices] == ["u200", "u50"]

    def test_bid_orders_single_slr_fit_first(self):
        runner = MultiFpgaRunner(fleet="u200,u280x2")
        whole = FpgaConfig()  # one SLR: everything fits
        sliced = FpgaConfig(
            slr_count=32, slr_crossing_penalty_cycles=20.0
        )  # 8 KiB regions: a 12 KiB partition spans
        workload, spanning_bytes, small_bytes = 1000.0, 12 * 1024, 4096
        assert runner._bid_cost(
            sliced, workload, spanning_bytes
        ) > runner._bid_cost(whole, workload, spanning_bytes)
        # A partition that fits one region bids identically.
        assert runner._bid_cost(
            sliced, workload, small_bytes
        ) == pytest.approx(runner._bid_cost(whole, workload, small_bytes))

    def test_placement_prefers_single_slr_fit(self, micro_graph):
        # Two equal cards except for SLR geometry: "whole" holds its
        # BRAM in one region, "sliced" spreads it over 32 regions each
        # smaller than the micro CSTs and charges a high crossing
        # penalty. Capacity-aware placement must route the partitions
        # to the card where they fit one SLR.
        whole = tight_spec("whole", FpgaConfig())
        sliced = tight_spec("sliced", FpgaConfig(
            slr_count=32, slr_crossing_penalty_cycles=200.0,
        ))
        q = get_query("q6")  # 10.5 KiB CST > the 8 KiB sliced regions
        runner = MultiFpgaRunner(fleet=(whole, sliced))
        result = runner.run(q.graph, micro_graph)
        by_part = {d.part: d.num_csts for d in result.devices}
        assert sum(by_part.values()) == result.num_partitions
        assert by_part["whole"] > by_part["sliced"]
        assert result.embeddings == count_reference_embeddings(
            q.graph, micro_graph
        )

    def test_partitions_fit_tightest_fleet_member(self, micro_graph):
        # Algorithm 2 must run against the smallest delta_S across the
        # fleet, so every partition can run (and fail over) anywhere.
        big = tight_spec("big", FpgaConfig(
            bram_bytes=256 * 1024, batch_size=64, max_ports=16
        ))
        small_cfg = FpgaConfig(
            bram_bytes=48 * 1024, batch_size=64, max_ports=16
        )
        small = tight_spec("small", small_cfg)
        q = get_query("q6")
        runner = MultiFpgaRunner(fleet=(big, small))
        result = runner.run(q.graph, micro_graph)
        # The partition count must match what the *small* card alone
        # would produce, not the big card's single partition.
        small_only = MultiFpgaRunner(num_devices=1, config=small_cfg)
        alone = small_only.run(q.graph, micro_graph)
        assert result.num_partitions == alone.num_partitions

    def test_fleet_trace_lanes_carry_part_names(self, micro_graph):
        base = dict(bram_bytes=48 * 1024, batch_size=64, max_ports=16)
        fleet = (
            tight_spec("tight-a", FpgaConfig(**base)),
            tight_spec("tight-b", FpgaConfig(**base)),
        )
        ctx = RunContext(tracer=Tracer(enabled=True))
        runner = MultiFpgaRunner(fleet=fleet, context=ctx)
        runner.run(get_query("q6").graph, micro_graph)
        lanes = {
            lane for _, lane in trace_lanes(ctx.tracer.to_chrome_trace())
        }
        assert any(lane.startswith("device0:tight-a/") for lane in lanes)
        assert any(lane.startswith("device1:tight-b/") for lane in lanes)
        # No unlabeled device lanes leak from fleet runs.
        assert not any(lane.startswith("device0/") for lane in lanes)

    def test_homogeneous_trace_lanes_unchanged(self, micro_graph):
        cfg = FpgaConfig(bram_bytes=48 * 1024, batch_size=64, max_ports=16)
        ctx = RunContext(fpga=cfg, tracer=Tracer(enabled=True))
        runner = MultiFpgaRunner(num_devices=2, config=cfg, context=ctx)
        runner.run(get_query("q6").graph, micro_graph)
        lanes = {
            lane for _, lane in trace_lanes(ctx.tracer.to_chrome_trace())
        }
        assert any(lane.startswith("device0/") for lane in lanes)
        assert not any(":" in lane for lane in lanes if "device" in lane)


class TestDeviceThroughHarness:
    def test_context_carries_device(self):
        ctx = make_context(HarnessConfig(device="u250", use_cache=False))
        assert ctx.device is not None
        assert ctx.device.part == "u250"
        assert ctx.device_part == "u250"
        assert ctx.fpga == get_device("u250").config

    def test_default_context_has_no_device(self):
        ctx = make_context(HarnessConfig(use_cache=False))
        assert ctx.device is None
        assert ctx.device_part is None
        assert ctx.fleet is None

    def test_counts_device_independent(self, micro_graph):
        q = get_query("q1")
        ref = count_reference_embeddings(q.graph, micro_graph)
        for part in (None, "u250", "u50"):
            ctx = make_context(
                HarnessConfig(device=part, use_cache=False)
            )
            out = REGISTRY.get("fast-sep").run(ctx, q.graph, micro_graph)
            assert out.embeddings == ref, part

    def test_fleet_through_registry(self, micro_graph):
        q = get_query("q2")
        ctx = make_context(
            HarnessConfig(fleet="u200,u280x2", use_cache=False)
        )
        out = REGISTRY.get("multi-fpga").run(ctx, q.graph, micro_graph)
        assert out.ok
        assert out.embeddings == count_reference_embeddings(
            q.graph, micro_graph
        )
