"""Smoke tests: every example script must run cleanly.

Examples are the public face of the library; a refactor that breaks
them should fail the suite, not a user.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "embeddings found" in out
        assert "FPGA kernel" in out

    def test_social_network_analysis(self):
        out = run_example("social_network_analysis.py")
        assert "most cohesive forums" in out
        assert "friend cascades" in out

    def test_device_tuning(self):
        out = run_example("device_tuning.py")
        assert "sweep: N_o" in out
        assert "undersized device rejected" in out

    def test_algorithm_comparison(self):
        out = run_example("algorithm_comparison.py", "DG-MICRO", "q0")
        assert "agree on the embedding count" in out

    def test_extensions_demo(self):
        out = run_example("extensions_demo.py")
        assert "edge-labeled matching" in out
        assert "directed matching" in out
        assert "multi-FPGA scaling" in out

    def test_paper_evaluation_quick_tier_starts(self):
        # Only check the campaign header + first table to keep the
        # suite fast; the full tier runs are exercised manually.
        out = run_example("algorithm_comparison.py", "DG-MICRO", "q4")
        assert "q4" in out
