"""Tests for the staged pipeline, the run context, and the registry."""

from __future__ import annotations

import pytest

from repro.baselines.reference import count_reference_embeddings
from repro.common.errors import BackendError
from repro.experiments.harness import HarnessConfig, make_context
from repro.ldbc.queries import get_query
from repro.runtime.context import STAGES, RunContext, StageCache
from repro.runtime.registry import (
    REGISTRY,
    BackendRegistry,
    BackendSpec,
    RunOutcome,
)

FAST_BACKENDS = (
    "fast-dram", "fast-basic", "fast-task", "fast-sep", "fast-share",
)

EXPECTED_NAMES = FAST_BACKENDS + (
    "multi-fpga", "cfl", "daf", "daf-8", "ceci", "ceci-8",
    "gpsm", "gsi", "reference",
)


@pytest.fixture(scope="module")
def q0():
    return get_query("q0").graph


class TestRegistry:
    def test_all_builtins_registered(self):
        assert set(REGISTRY.names()) == set(EXPECTED_NAMES)

    def test_alias_resolution(self):
        assert REGISTRY.get("FAST").name == "fast-share"
        assert REGISTRY.get("fast").name == "fast-share"
        assert REGISTRY.get("FAST-SEP").name == "fast-sep"
        assert REGISTRY.get("sep").name == "fast-sep"
        assert REGISTRY.get("CECI-8").name == "ceci-8"
        assert REGISTRY.get("Fast-Dram").name == "fast-dram"
        assert REGISTRY.get("brute-force").name == "reference"
        assert "GpSM" in REGISTRY
        assert "nope" not in REGISTRY

    def test_unknown_name_enumerates_valid_names(self):
        with pytest.raises(BackendError) as exc:
            REGISTRY.get("quantum")
        message = str(exc.value)
        for name in REGISTRY.names():
            assert name in message

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry()
        spec = BackendSpec(
            name="toy", summary="", family="cpu", cost_domain="cpu-ops",
            needs_cst=False, verdicts=(), aliases=("TOY",),
            run=lambda ctx, q, d, **kw: RunOutcome(
                backend="toy", verdict="OK", seconds=0.0, embeddings=0
            ),
        )
        registry.register(spec)
        with pytest.raises(BackendError):
            registry.register(spec)

    def test_capabilities_shape(self):
        caps = REGISTRY.get("cfl").capabilities()
        assert caps["family"] == "cpu"
        assert caps["cost_domain"] == "cpu-ops"
        assert caps["verdicts"][0] == "OK"
        assert "OOM" in caps["verdicts"]


class TestRegistryRoundTrip:
    def test_every_backend_runs_and_agrees(self, micro_graph, q0):
        """Round-trip: each registered name resolves, runs, and every
        OK verdict agrees with the brute-force reference count."""
        truth = count_reference_embeddings(q0, micro_graph)
        ctx = RunContext()
        for name in REGISTRY.names():
            out = REGISTRY.run(name, q0, micro_graph, ctx=ctx)
            assert isinstance(out, RunOutcome), name
            assert out.backend == name
            if out.ok:
                assert out.embeddings == truth, name
                assert out.seconds >= 0.0, name
            else:
                assert out.verdict in REGISTRY.get(name).verdicts, name

    def test_outcome_carries_metrics_payload(self, micro_graph, q0):
        out = REGISTRY.run("fast-sep", q0, micro_graph)
        assert out.metrics["backend"] == "fast-sep"
        assert set(out.metrics["stages"]) == set(STAGES)
        assert "cache" in out.metrics
        assert out.metrics["totals"]["modeled_seconds"] == pytest.approx(
            out.seconds
        )


class TestStageMetrics:
    @pytest.mark.parametrize("name", FAST_BACKENDS)
    def test_fast_backends_report_all_stages(self, name, micro_graph, q0):
        out = REGISTRY.run(name, q0, micro_graph)
        stages = out.metrics["stages"]
        assert tuple(stages) == STAGES
        for stage_name, stage in stages.items():
            assert stage["wall_seconds"] > 0.0, (name, stage_name)
            assert stage["modeled_seconds"] >= 0.0, (name, stage_name)

    def test_execute_stage_facts(self, micro_graph, q0):
        out = REGISTRY.run("fast-sep", q0, micro_graph)
        execute = out.metrics["stages"]["execute"]
        assert execute["cycles"] > 0
        assert execute["rounds"] > 0
        assert execute["N"] > 0
        assert execute["M"] > 0
        assert "buffer_peak" in execute

    def test_schedule_stage_reports_split(self, micro_graph, q0):
        out = REGISTRY.run("fast-share", q0, micro_graph)
        schedule = out.metrics["stages"]["schedule"]
        assert schedule["cpu_csts"] + schedule["fpga_csts"] >= 1
        assert 0.0 <= schedule["cpu_workload_fraction"] <= 1.0

    def test_history_accumulates(self, micro_graph, q0):
        ctx = RunContext()
        REGISTRY.run("fast-basic", q0, micro_graph, ctx=ctx)
        REGISTRY.run("cfl", q0, micro_graph, ctx=ctx)
        assert [m.backend for m in ctx.history] == ["fast-basic", "cfl"]


class TestStageCache:
    def test_get_or_build_hit_miss(self):
        cache = StageCache()
        value, cached = cache.get_or_build("cst", ("k",), lambda: 41)
        assert (value, cached) == (41, False)
        value, cached = cache.get_or_build("cst", ("k",), lambda: 42)
        assert (value, cached) == (41, True)
        stats = cache.stats()["cst"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_disabled_cache_never_hits(self):
        cache = StageCache(enabled=False)
        cache.get_or_build("cst", ("k",), lambda: 1)
        _, cached = cache.get_or_build("cst", ("k",), lambda: 2)
        assert not cached
        assert len(cache) == 0

    def test_eviction_bounds_size(self):
        cache = StageCache(max_entries=4)
        for i in range(10):
            cache.get_or_build("cst", (i,), lambda: i)
        assert len(cache) <= 4

    def test_cache_correctness_on_vs_off(self, micro_graph, q0):
        """Identical counts and modeled times with the cache on or off;
        the second cached run flags ``cached=True`` and the payload
        reports a nonzero hit rate."""
        ctx_on = make_context(HarnessConfig(stage_cache=True))
        ctx_off = make_context(HarnessConfig(stage_cache=False))

        first = REGISTRY.run("fast-sep", q0, micro_graph, ctx=ctx_on)
        second = REGISTRY.run("fast-sep", q0, micro_graph, ctx=ctx_on)
        cold = REGISTRY.run("fast-sep", q0, micro_graph, ctx=ctx_off)

        assert first.metrics["stages"]["build_cst"]["cached"] is False
        assert second.metrics["stages"]["build_cst"]["cached"] is True
        assert second.metrics["stages"]["partition"]["cached"] is True

        # The cache saves wall time only - every modeled number and
        # every count is independent of cache state.
        assert first.embeddings == second.embeddings == cold.embeddings
        assert first.seconds == pytest.approx(second.seconds)
        assert first.seconds == pytest.approx(cold.seconds)

        assert second.metrics["cache"]["cst"]["hit_rate"] == 0.5
        assert cold.metrics["cache"]["cst"]["hit_rate"] == 0.0

    def test_share_variant_identical_with_cache(self, micro_graph, q0):
        """FAST-SHARE's fused partition path bypasses the cache, so the
        cache setting cannot change its results either."""
        on = REGISTRY.run(
            "fast-share", q0, micro_graph,
            ctx=make_context(HarnessConfig(stage_cache=True)),
        )
        off = REGISTRY.run(
            "fast-share", q0, micro_graph,
            ctx=make_context(HarnessConfig(stage_cache=False)),
        )
        assert on.embeddings == off.embeddings
        assert on.seconds == pytest.approx(off.seconds)


class TestContext:
    def test_stage_timer_accumulates(self):
        ctx = RunContext()
        ctx.begin_run("toy")
        with ctx.stage("plan") as st:
            st.note(order=(0, 1))
        with ctx.stage("plan"):
            pass
        metrics = ctx.finish_run()
        assert metrics.stages["plan"].wall_seconds > 0.0
        assert metrics.stages["plan"].extra["order"] == (0, 1)

    def test_history_is_bounded(self):
        ctx = RunContext(max_history=3)
        for i in range(5):
            ctx.begin_run(f"run-{i}")
        assert len(ctx.history) == 3
        assert ctx.history[-1].backend == "run-4"
