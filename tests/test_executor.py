"""Overlapped/double-buffered partition executor tests (ISSUE 3).

Two headline properties:

* ``workers`` is invisible to everything except wall-clock time —
  embedding counts, result sets, modeled seconds, and the health
  record are bit-identical between serial and concurrent execution
  for every FAST variant and the multi-FPGA runner, with and without
  an active fault plan, across a seed matrix;
* ``buffers=1`` reproduces the original flat overlap arithmetic
  exactly, and raising ``buffers`` can only lower modeled time.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.common.errors import DeviceError
from repro.experiments.harness import HarnessConfig, make_context, tight_config
from repro.fpga.config import FpgaConfig
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import get_query
from repro.runtime.context import RunContext
from repro.runtime.executor import (
    ExecutorConfig,
    PartitionExecutor,
    overlap_timeline,
)
from repro.runtime.faults import FaultPlan, RetryPolicy
from repro.runtime.registry import REGISTRY

FAST_VARIANTS = (
    "fast-dram", "fast-basic", "fast-task", "fast-sep", "fast-share",
)
ALL_BACKENDS = FAST_VARIANTS + ("multi-fpga",)

#: Seed matrix; CI appends one more via REPRO_FAULT_SEED.
SEEDS = [3, 5, 11]
_env_seed = os.environ.get("REPRO_FAULT_SEED")
if _env_seed is not None and int(_env_seed) not in SEEDS:
    SEEDS.append(int(_env_seed))

#: Small device so DG-MICRO actually produces a stream of partitions.
STRESS_FPGA = FpgaConfig(bram_bytes=8 * 1024, batch_size=128,
                         max_ports=32)

_seconds = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
_segments = st.lists(st.tuples(_seconds, _seconds), max_size=30)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("DG-MICRO")


def run_backend(name, dataset, query="q0", *, workers=1, buffers=1,
                pool="thread", fpga=None, fault_plan=None,
                retry_policy=None, **kwargs):
    ctx = RunContext(
        fpga=fpga or STRESS_FPGA,
        fault_plan=fault_plan,
        retry_policy=retry_policy or RetryPolicy(),
        executor=ExecutorConfig(workers=workers, buffers=buffers,
                                pool=pool),
    )
    q = get_query(query)
    return REGISTRY.get(name).run(ctx, q.graph, dataset.graph, **kwargs)


# ----------------------------------------------------------------------
# overlap_timeline properties
# ----------------------------------------------------------------------


class TestOverlapTimeline:
    @given(_segments)
    def test_single_buffer_is_the_flat_serial_sum(self, segments):
        """At buffers=1 the recurrence collapses to the exact
        left-to-right sum ``((acc + w) + k)`` — bit-identical, not
        merely approximately equal."""
        acc = 0.0
        for write_s, kernel_s in segments:
            acc = (acc + write_s) + kernel_s
        assert overlap_timeline(segments, buffers=1) == acc

    @given(_segments, st.integers(min_value=1, max_value=8))
    def test_monotone_non_increasing_in_buffers(self, segments, buffers):
        assert overlap_timeline(segments, buffers + 1) <= (
            overlap_timeline(segments, buffers)
        )

    @given(_segments, st.integers(min_value=2, max_value=8))
    def test_bounded_below_by_both_resources(self, segments, buffers):
        """No amount of staging beats the serialized transfers, nor the
        first transfer plus the serialized kernels."""
        if not segments:
            return
        t = overlap_timeline(segments, buffers)
        writes = 0.0
        for w, _ in segments:
            writes += w
        kernels = segments[0][0]
        for _, k in segments:
            kernels += k
        assert t >= min(writes, kernels)  # safe under rounding
        assert t >= segments[0][0]

    def test_empty_timeline_is_zero(self):
        assert overlap_timeline([], buffers=4) == 0.0

    def test_two_buffers_overlap_a_balanced_pipeline(self):
        # 3 equal segments: serial = 6; double-buffered = w + 3k + ...
        segments = [(1.0, 1.0)] * 3
        assert overlap_timeline(segments, 1) == 6.0
        assert overlap_timeline(segments, 2) == 4.0

    def test_rejects_zero_buffers(self):
        with pytest.raises(DeviceError):
            overlap_timeline([(1.0, 1.0)], buffers=0)


# ----------------------------------------------------------------------
# ExecutorConfig / PartitionExecutor mechanics
# ----------------------------------------------------------------------


class TestExecutorMechanics:
    @pytest.mark.parametrize("bad", [
        {"workers": 0}, {"buffers": 0}, {"pool": "fibers"},
    ])
    def test_config_validates(self, bad):
        with pytest.raises(DeviceError):
            ExecutorConfig(**bad)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_results_come_back_in_task_order(self, workers):
        ex = PartitionExecutor(ExecutorConfig(workers=workers))
        out = ex.map(lambda i: i * i, [(i,) for i in range(50)])
        assert out == [i * i for i in range(50)]

    def test_worker_exceptions_propagate(self):
        def boom(i):
            raise ValueError(f"task {i}")

        ex = PartitionExecutor(ExecutorConfig(workers=4))
        with pytest.raises(ValueError, match="task"):
            ex.map(boom, [(i,) for i in range(8)])


# ----------------------------------------------------------------------
# Determinism: workers must be invisible outside wall-clock time
# ----------------------------------------------------------------------


class TestWorkerDeterminism:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_fault_free_counts_and_seconds_identical(self, backend,
                                                     dataset):
        serial = run_backend(backend, dataset)
        pooled = run_backend(backend, dataset, workers=4)
        assert pooled.embeddings == serial.embeddings
        assert pooled.seconds == serial.seconds

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulty_runs_identical_incl_health(self, backend, seed,
                                               dataset):
        kwargs = dict(fault_plan=FaultPlan(seed=seed))
        serial = run_backend(backend, dataset, "q2", **kwargs)
        pooled = run_backend(backend, dataset, "q2", workers=4, **kwargs)
        assert pooled.embeddings == serial.embeddings
        assert pooled.seconds == serial.seconds
        assert pooled.health == serial.health

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hot_ladder_identical_under_pool(self, seed, dataset):
        """Re-partition and CPU-fallback rungs engage; event order and
        counts still match serial exactly."""
        kwargs = dict(
            fault_plan=FaultPlan(seed=seed,
                                 rates={"kernel_timeout": 0.5},
                                 max_consecutive=6),
            retry_policy=RetryPolicy(max_retries=1),
        )
        serial = run_backend("fast-share", dataset, "q2", **kwargs)
        pooled = run_backend("fast-share", dataset, "q2", workers=4,
                             **kwargs)
        assert serial.health["retries"] > 0
        assert pooled.embeddings == serial.embeddings
        assert pooled.seconds == serial.seconds
        assert pooled.health == serial.health

    def test_collected_results_identical(self, dataset):
        serial = run_backend("fast-share", dataset,
                             collect_results=True)
        pooled = run_backend("fast-share", dataset, workers=4,
                             collect_results=True)
        assert pooled.raw.results == serial.raw.results

    def test_process_pool_matches_thread_pool(self, dataset):
        threaded = run_backend("fast-sep", dataset, workers=2)
        forked = run_backend("fast-sep", dataset, workers=2,
                             pool="process")
        assert forked.embeddings == threaded.embeddings
        assert forked.seconds == threaded.seconds

    @pytest.mark.parametrize("seed", SEEDS)
    def test_supervised_process_pool_runs_natively(self, seed, dataset):
        """A fault plan no longer downgrades ``--pool process``: the
        supervised ladder runs inside worker processes over the
        shared-memory CST plane and matches serial bit-identically,
        health record included."""
        kwargs = dict(fault_plan=FaultPlan(seed=seed))
        serial = run_backend("fast-share", dataset, "q2", **kwargs)
        forked = run_backend("fast-share", dataset, "q2", workers=2,
                             pool="process", **kwargs)
        assert forked.embeddings == serial.embeddings
        assert forked.seconds == serial.seconds
        assert forked.health == serial.health
        execute = forked.metrics["stages"]["execute"]
        assert execute["pool"] == "process"
        assert execute["executor_pool_effective"] == "process"
        assert execute["cst_plane"] == "shm"

    def test_cpu_share_partitions_go_through_the_pool(self):
        """A high delta routes a real CPU share; modeled seconds stay
        identical under the pool."""
        data = load_dataset("DG-MINI")
        cfg = tight_config(HarnessConfig(delta=0.4))
        q = get_query("q1")
        serial_ctx = make_context(cfg)
        serial = REGISTRY.get("fast-share").run(
            serial_ctx, q.graph, data.graph
        )
        pooled_cfg = tight_config(HarnessConfig(delta=0.4, workers=4))
        pooled_ctx = make_context(pooled_cfg)
        pooled = REGISTRY.get("fast-share").run(
            pooled_ctx, q.graph, data.graph
        )
        cpu_csts = serial.metrics["stages"]["schedule"]["cpu_csts"]
        assert cpu_csts > 0
        assert pooled.embeddings == serial.embeddings
        assert pooled.seconds == serial.seconds


# ----------------------------------------------------------------------
# Modeled overlap: buffers only ever help, buffers=1 is the old model
# ----------------------------------------------------------------------


class TestModeledOverlap:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_single_buffer_matches_legacy_model(self, backend, dataset):
        """workers and pool choice never perturb the buffers=1 model."""
        legacy = run_backend(backend, dataset)
        pooled = run_backend(backend, dataset, workers=4, buffers=1)
        assert pooled.seconds == legacy.seconds

    @pytest.mark.parametrize("name", ["DG-MICRO", "DG-MINI", "DG01"])
    def test_double_buffering_never_slower(self, name):
        """Table-3 datasets: modeled time with buffers=2 is <= the
        serial overlap model."""
        data = load_dataset(name)
        q = get_query("q1")
        serial = REGISTRY.get("fast-share").run(
            make_context(tight_config(HarnessConfig())),
            q.graph, data.graph,
        )
        overlapped = REGISTRY.get("fast-share").run(
            make_context(tight_config(HarnessConfig(buffers=2))),
            q.graph, data.graph,
        )
        assert overlapped.embeddings == serial.embeddings
        assert overlapped.seconds <= serial.seconds

    def test_more_buffers_monotone_on_real_run(self, dataset):
        times = []
        for buffers in (1, 2, 4):
            out = run_backend("fast-share", dataset, "q1",
                              buffers=buffers)
            times.append(out.seconds)
        assert times[1] <= times[0]
        assert times[2] <= times[1]

    def test_fpga_seconds_reported_in_stage_metrics(self, dataset):
        out = run_backend("fast-share", dataset, buffers=2, workers=2)
        execute = out.metrics["stages"]["execute"]
        assert execute["buffers"] == 2
        assert execute["workers"] == 2
        assert execute["fpga_seconds"] > 0.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_overlap_composes_with_faults(self, seed, dataset):
        """Double-buffering under a fault plan: counts stay exact and
        the overlapped model never exceeds the flat one."""
        kwargs = dict(fault_plan=FaultPlan(seed=seed))
        flat = run_backend("fast-share", dataset, "q2", **kwargs)
        piped = run_backend("fast-share", dataset, "q2", buffers=2,
                            workers=4, **kwargs)
        assert piped.embeddings == flat.embeddings
        assert piped.seconds <= flat.seconds


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------


class TestCliFlags:
    def test_match_accepts_workers_and_buffers(self, capsys):
        rc = cli_main([
            "match", "--dataset", "DG-MICRO", "--query", "q0",
            "--workers", "4", "--buffers", "2",
        ])
        assert rc == 0
        assert "embeddings" in capsys.readouterr().out

    def test_compare_accepts_workers_and_buffers(self, capsys):
        rc = cli_main([
            "compare", "--dataset", "DG-MICRO", "--query", "q0",
            "--algorithms", "FAST", "FAST-SEP",
            "--workers", "2", "--buffers", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FAST" in out


# Quiet hypothesis's shrink deadline on the CI's slower runners.
settings.register_profile("executor", deadline=None)
settings.load_profile("executor")
