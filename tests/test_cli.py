"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_match_defaults(self):
        args = build_parser().parse_args(["match"])
        assert args.dataset == "DG-MINI"
        assert args.variant == "share"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--dataset", "DG-HUGE"])

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--query", "q99"])


class TestCommands:
    def test_match(self, capsys):
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "embeddings" in out
        assert "kernel_ms" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--dataset", "DG-MICRO", "--query", "q0",
                   "--algorithms", "CECI", "FAST"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CECI" in out and "FAST" in out

    def test_info(self, capsys):
        rc = main(["info", "--dataset", "DG-MICRO"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "num_vertices" in out
