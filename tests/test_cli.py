"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_FATAL, VERDICT_EXIT_CODES, build_parser, main
from repro.common.errors import FatalDeviceError, ModeledOutOfMemory
from repro.runtime.registry import REGISTRY, BackendSpec


@pytest.fixture()
def scratch_registry():
    """Snapshot the global registry; restore after the test so
    test-only backends never leak into other test modules (the
    integration suite iterates every registered backend)."""
    specs, aliases = dict(REGISTRY._specs), dict(REGISTRY._aliases)
    try:
        yield REGISTRY
    finally:
        REGISTRY._specs.clear()
        REGISTRY._specs.update(specs)
        REGISTRY._aliases.clear()
        REGISTRY._aliases.update(aliases)


def _register_failing_backend(name: str, exc: Exception) -> None:
    """Register a backend that always raises ``exc`` (idempotent)."""
    if name in REGISTRY:
        return

    def run(ctx, query, data, **kwargs):
        raise exc

    REGISTRY.register(BackendSpec(
        name=name,
        summary="always-failing test double",
        family="cpu",
        cost_domain="cpu-ops",
        needs_cst=False,
        verdicts=("OOM",),
        aliases=(),
        run=run,
    ))


class TestParser:
    def test_match_defaults(self):
        args = build_parser().parse_args(["match"])
        assert args.dataset == "DG-MINI"
        assert args.variant == "share"
        assert args.fault_seed is None
        assert args.max_retries is None

    def test_fault_flags_parsed(self):
        args = build_parser().parse_args(
            ["match", "--fault-seed", "11", "--max-retries", "5"]
        )
        assert args.fault_seed == 11
        assert args.max_retries == 5

    def test_compare_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["compare", "--fault-seed", "3"]
        )
        assert args.fault_seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--dataset", "DG-HUGE"])

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--query", "q99"])


class TestCommands:
    def test_match(self, capsys):
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "embeddings" in out
        assert "kernel_ms" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--dataset", "DG-MICRO", "--query", "q0",
                   "--algorithms", "CECI", "FAST"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CECI" in out and "FAST" in out

    def test_info(self, capsys):
        rc = main(["info", "--dataset", "DG-MICRO"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "num_vertices" in out

    def test_match_under_recoverable_faults(self, capsys):
        clean = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                      "--variant", "sep"])
        clean_out = capsys.readouterr().out
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep", "--fault-seed", "3"])
        out = capsys.readouterr().out
        assert clean == 0 and rc == 0
        # Same embedding count with and without injected faults.
        count = next(line for line in clean_out.splitlines()
                     if "embeddings" in line)
        assert count in out


class TestExitCodes:
    def test_oom_verdict_exit_code(self, capsys, scratch_registry):
        _register_failing_backend(
            "test-oom", ModeledOutOfMemory("modeled heap exceeded")
        )
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--backend", "test-oom"])
        err = capsys.readouterr().err
        assert rc == VERDICT_EXIT_CODES["OOM"] == 3
        # One-line verdict on stderr, no traceback.
        assert "OOM" in err
        assert "Traceback" not in err

    def test_fatal_error_exit_code(self, capsys, scratch_registry):
        _register_failing_backend(
            "test-fatal", FatalDeviceError("all devices failed")
        )
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--backend", "test-fatal"])
        err = capsys.readouterr().err
        assert rc == EXIT_FATAL == 6
        assert "fatal" in err
        assert "Traceback" not in err

    def test_compare_reports_verdict_rows(self, capsys, scratch_registry):
        _register_failing_backend(
            "test-oom", ModeledOutOfMemory("modeled heap exceeded")
        )
        rc = main(["compare", "--dataset", "DG-MICRO", "--query", "q0",
                   "--algorithms", "FAST", "test-oom"])
        out = capsys.readouterr().out
        assert rc == VERDICT_EXIT_CODES["OOM"]
        assert "OOM" in out

    def test_unknown_backend_is_usage_error(self, capsys):
        rc = main(["match", "--backend", "no-such-backend"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
