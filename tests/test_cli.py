"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_FATAL, VERDICT_EXIT_CODES, build_parser, main
from repro.common.errors import FatalDeviceError, ModeledOutOfMemory
from repro.runtime.registry import REGISTRY, BackendSpec


@pytest.fixture()
def scratch_registry():
    """Snapshot the global registry; restore after the test so
    test-only backends never leak into other test modules (the
    integration suite iterates every registered backend)."""
    specs, aliases = dict(REGISTRY._specs), dict(REGISTRY._aliases)
    try:
        yield REGISTRY
    finally:
        REGISTRY._specs.clear()
        REGISTRY._specs.update(specs)
        REGISTRY._aliases.clear()
        REGISTRY._aliases.update(aliases)


def _register_failing_backend(name: str, exc: Exception) -> None:
    """Register a backend that always raises ``exc`` (idempotent)."""
    if name in REGISTRY:
        return

    def run(ctx, query, data, **kwargs):
        raise exc

    REGISTRY.register(BackendSpec(
        name=name,
        summary="always-failing test double",
        family="cpu",
        cost_domain="cpu-ops",
        needs_cst=False,
        verdicts=("OOM",),
        aliases=(),
        run=run,
    ))


class TestParser:
    def test_match_defaults(self):
        args = build_parser().parse_args(["match"])
        assert args.dataset == "DG-MINI"
        assert args.variant == "share"
        assert args.fault_seed is None
        assert args.max_retries is None

    def test_fault_flags_parsed(self):
        args = build_parser().parse_args(
            ["match", "--fault-seed", "11", "--max-retries", "5"]
        )
        assert args.fault_seed == 11
        assert args.max_retries == 5

    def test_compare_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["compare", "--fault-seed", "3"]
        )
        assert args.fault_seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--dataset", "DG-HUGE"])

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--query", "q99"])

    def test_trace_flags_parsed(self):
        args = build_parser().parse_args(
            ["match", "--trace", "out.json", "--metrics-out", "out.prom"]
        )
        assert args.trace == "out.json"
        assert args.metrics_out == "out.prom"

    def test_trace_flags_default_off(self):
        args = build_parser().parse_args(["match"])
        assert args.trace is None
        assert args.metrics_out is None

    def test_trace_summary_parsed(self):
        args = build_parser().parse_args(
            ["trace-summary", "out.json", "--top", "9"]
        )
        assert args.trace_file == "out.json"
        assert args.top == 9
        assert args.request is None

    def test_trace_summary_request_parsed(self):
        args = build_parser().parse_args(
            ["trace-summary", "out.json", "--request", "r42"]
        )
        assert args.request == "r42"

    def test_device_flags_parsed(self):
        args = build_parser().parse_args(
            ["match", "--device", "u250", "--fleet", "u200,u280x2",
             "--split-policy", "degree"]
        )
        assert args.device == "u250"
        assert args.fleet == "u200,u280x2"
        assert args.split_policy == "degree"

    def test_device_flags_default_off(self):
        args = build_parser().parse_args(["match"])
        assert args.device is None
        assert args.fleet is None
        assert args.split_policy == "order"

    def test_compare_accepts_device_and_split_policy(self):
        args = build_parser().parse_args(
            ["compare", "--device", "u50", "--split-policy", "degree"]
        )
        assert args.device == "u50"
        assert args.split_policy == "degree"

    def test_bad_split_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["match", "--split-policy", "random"]
            )


class TestCommands:
    def test_match(self, capsys):
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "embeddings" in out
        assert "kernel_ms" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--dataset", "DG-MICRO", "--query", "q0",
                   "--algorithms", "CECI", "FAST"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CECI" in out and "FAST" in out

    def test_info(self, capsys):
        rc = main(["info", "--dataset", "DG-MICRO"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "num_vertices" in out

    def test_devices_lists_catalog(self, capsys):
        rc = main(["devices"])
        out = capsys.readouterr().out
        assert rc == 0
        for part in ("sim-small", "u200", "u250", "u280", "u50"):
            assert part in out

    def test_match_on_catalog_device(self, capsys):
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep", "--device", "u250"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "embeddings" in out

    def test_match_heterogeneous_fleet(self, capsys):
        plain = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                      "--backend", "multi-fpga"])
        plain_out = capsys.readouterr().out
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--backend", "multi-fpga", "--fleet", "u200,u280x2"])
        out = capsys.readouterr().out
        assert plain == 0 and rc == 0
        # Counts never depend on the pool composition.
        count = next(line for line in plain_out.splitlines()
                     if "embeddings" in line)
        assert count in out

    def test_unknown_device_is_usage_error(self, capsys):
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--device", "u9999"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown device part" in err

    def test_unknown_fleet_part_is_usage_error(self, capsys):
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--backend", "multi-fpga", "--fleet", "u200,nope"])
        assert rc == 2
        assert "unknown device part" in capsys.readouterr().err

    def test_split_policy_keeps_counts(self, capsys):
        order = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                      "--variant", "sep", "--split-policy", "order"])
        order_out = capsys.readouterr().out
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep", "--split-policy", "degree"])
        out = capsys.readouterr().out
        assert order == 0 and rc == 0
        count = next(line for line in order_out.splitlines()
                     if "embeddings" in line)
        assert count in out

    def test_match_under_recoverable_faults(self, capsys):
        clean = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                      "--variant", "sep"])
        clean_out = capsys.readouterr().out
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep", "--fault-seed", "3"])
        out = capsys.readouterr().out
        assert clean == 0 and rc == 0
        # Same embedding count with and without injected faults.
        count = next(line for line in clean_out.splitlines()
                     if "embeddings" in line)
        assert count in out


class TestTraceArtifacts:
    def test_match_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro.runtime.tracing import (
            validate_chrome_trace,
            validate_prometheus_text,
        )

        trace = tmp_path / "run.trace.json"
        prom = tmp_path / "run.prom"
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep", "--trace", str(trace),
                   "--metrics-out", str(prom)])
        err = capsys.readouterr().err
        assert rc == 0
        assert str(trace) in err and str(prom) in err
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        assert validate_prometheus_text(prom.read_text()) == []

    def test_traced_match_counts_unchanged(self, capsys, tmp_path):
        plain = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                      "--variant", "sep"])
        plain_out = capsys.readouterr().out
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--variant", "sep", "--trace",
                   str(tmp_path / "t.json")])
        out = capsys.readouterr().out
        assert plain == 0 and rc == 0
        # Tracing is observation-only: identical result rows.
        assert plain_out == out

    def test_metrics_out_without_trace(self, tmp_path):
        from repro.runtime.tracing import validate_prometheus_text

        prom = tmp_path / "run.prom"
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--metrics-out", str(prom)])
        assert rc == 0
        assert validate_prometheus_text(prom.read_text()) == []

    def test_trace_summary_happy_path(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        main(["match", "--dataset", "DG-MICRO", "--query", "q0",
              "--variant", "sep", "--trace", str(trace)])
        capsys.readouterr()
        rc = main(["trace-summary", str(trace), "--top", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "duration_ms" in out
        assert "stages" in out

    def test_trace_summary_missing_file(self, capsys, tmp_path):
        rc = main(["trace-summary", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_trace_summary_invalid_json(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["trace-summary", str(bad)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_trace_summary_rejects_bad_schema(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace.json"
        bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
        rc = main(["trace-summary", str(bad)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    @staticmethod
    def _request_trace(tmp_path):
        """A serve-style trace with two request-scoped spans."""
        import json as _json

        from repro.runtime.tracing import MODELED, Tracer

        tracer = Tracer(enabled=True)
        tracer.set_request("r1")
        tracer.span("execute", "run", 0.0, 1.0, clock=MODELED)
        tracer.set_request("r2")
        tracer.span("execute", "run", 1.0, 2.0, clock=MODELED)
        tracer.set_request(None)
        path = tmp_path / "serve.trace.json"
        path.write_text(_json.dumps(tracer.to_chrome_trace()))
        return path

    def test_trace_summary_request_filter(self, capsys, tmp_path):
        trace = self._request_trace(tmp_path)
        rc = main(["trace-summary", str(trace), "--request", "r1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(request r1)" in out
        # Only r1's 1000 ms span survives; r2's 2000 ms one is gone.
        assert "1000.000000" in out
        assert "2000.000000" not in out

    def test_trace_summary_request_not_found(self, capsys, tmp_path):
        trace = self._request_trace(tmp_path)
        rc = main(["trace-summary", str(trace), "--request", "zzz"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "no spans for request 'zzz'" in captured.err

    def test_trace_summary_request_keeps_exit_codes(
        self, capsys, tmp_path
    ):
        rc = main(["trace-summary", str(tmp_path / "absent.json"),
                   "--request", "r1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestExitCodes:
    def test_oom_verdict_exit_code(self, capsys, scratch_registry):
        _register_failing_backend(
            "test-oom", ModeledOutOfMemory("modeled heap exceeded")
        )
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--backend", "test-oom"])
        err = capsys.readouterr().err
        assert rc == VERDICT_EXIT_CODES["OOM"] == 3
        # One-line verdict on stderr, no traceback.
        assert "OOM" in err
        assert "Traceback" not in err

    def test_fatal_error_exit_code(self, capsys, scratch_registry):
        _register_failing_backend(
            "test-fatal", FatalDeviceError("all devices failed")
        )
        rc = main(["match", "--dataset", "DG-MICRO", "--query", "q0",
                   "--backend", "test-fatal"])
        err = capsys.readouterr().err
        assert rc == EXIT_FATAL == 6
        assert "fatal" in err
        assert "Traceback" not in err

    def test_compare_reports_verdict_rows(self, capsys, scratch_registry):
        _register_failing_backend(
            "test-oom", ModeledOutOfMemory("modeled heap exceeded")
        )
        rc = main(["compare", "--dataset", "DG-MICRO", "--query", "q0",
                   "--algorithms", "FAST", "test-oom"])
        out = capsys.readouterr().out
        assert rc == VERDICT_EXIT_CODES["OOM"]
        assert "OOM" in out

    def test_unknown_backend_is_usage_error(self, capsys):
        rc = main(["match", "--backend", "no-such-backend"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
