"""Tests for the degree-targeted partition split policy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reference import count_reference_embeddings
from repro.common.errors import PartitionError
from repro.cst.builder import build_cst
from repro.cst.partition import PartitionLimits, partition_to_list
from repro.graph.generators import random_connected_query, random_labeled_graph
from repro.host.cpu_matcher import cst_embeddings
from repro.host.runtime import FastRunner
from repro.ldbc.queries import get_query
from repro.query.ordering import path_based_order


def make(query_name, data):
    q = get_query(query_name)
    cst = build_cst(q.graph, data)
    order = path_based_order(cst.tree, data)
    limits = PartitionLimits(
        max_bytes=max(512, cst.size_bytes() // 5),
        max_degree=max(4, cst.max_candidate_degree() // 3),
    )
    return cst, order, limits


class TestDegreePolicy:
    @pytest.mark.parametrize("name", ["q0", "q1", "q2", "q5", "q6"])
    def test_disjoint_and_complete(self, micro_graph, name):
        cst, order, limits = make(name, micro_graph)
        parts, _ = partition_to_list(cst, order, limits,
                                     split_policy="degree")
        seen = set()
        for part in parts:
            assert limits.satisfied_by(part)
            for emb in cst_embeddings(part, order):
                assert emb not in seen, "overlap"
                seen.add(emb)
        assert len(seen) == count_reference_embeddings(
            get_query(name).graph, micro_graph
        ), name

    def test_collapses_hub_explosion(self, micro_graph):
        """On port-capped hub queries the degree policy must produce
        far fewer partitions than Algorithm 2's order policy."""
        q = get_query("q1")
        cst = build_cst(q.graph, micro_graph)
        order = path_based_order(cst.tree, micro_graph)
        limits = PartitionLimits(
            max_bytes=1 << 30,
            max_degree=max(2, cst.max_candidate_degree() // 8),
        )
        by_order, _ = partition_to_list(cst, order, limits)
        by_degree, _ = partition_to_list(cst, order, limits,
                                         split_policy="degree")
        assert len(by_degree) < len(by_order)

    def test_unknown_policy_rejected(self, micro_graph):
        cst, order, limits = make("q0", micro_graph)
        with pytest.raises(PartitionError, match="split policy"):
            partition_to_list(cst, order, limits, split_policy="magic")

    def test_runner_integration(self, micro_graph, tight_fpga_config):
        q = get_query("q6")
        ref = count_reference_embeddings(q.graph, micro_graph)
        runner = FastRunner(config=tight_fpga_config, variant="sep",
                            split_policy="degree")
        result = runner.run(q.graph, micro_graph)
        assert result.embeddings == ref

    @settings(max_examples=10, deadline=None)
    @given(
        data_seed=st.integers(0, 2000),
        query_seed=st.integers(0, 2000),
    )
    def test_policies_agree_property(self, data_seed, query_seed):
        data = random_labeled_graph(40, 170, 3, seed=data_seed)
        query = random_connected_query(5, 7, 3, seed=query_seed)
        cst = build_cst(query, data)
        if cst.is_empty():
            return
        order = path_based_order(cst.tree, data)
        limits = PartitionLimits(
            max_bytes=max(400, cst.size_bytes() // 6),
            max_degree=max(3, cst.max_candidate_degree() // 2),
        )
        whole = sorted(cst_embeddings(cst, order))
        for policy in ("order", "degree"):
            parts, _ = partition_to_list(cst, order, limits,
                                         split_policy=policy)
            pieces = sorted(
                e for p in parts for e in cst_embeddings(p, order)
            )
            assert pieces == whole, policy
