"""Observability-plane tests: registry, logs, SLO, live endpoint.

The acceptance properties of ISSUE 10:

* every ``fast_*`` family is declared once in
  ``repro.obs.registry.FAMILIES``, recording against an undeclared
  name raises, and the declared set cross-checks against the
  docs/observability.md family tables (the metrics-name lint);
* a serve session with ``--metrics-port`` answers live ``/metrics``
  scrapes that pass ``validate_prometheus_text`` while jobs run, and
  ``/healthz`` walks starting -> serving -> draining;
* worker-side pool spans merge into the request trace without
  touching the modeled clock: the modeled half of the trace is
  bit-identical at any ``--workers`` count;
* the structured JSONL log and the SLO tracker are deterministic
  functions of the request trace.
"""

from __future__ import annotations

import io
import json
import re
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.experiments.harness import (
    HarnessConfig,
    make_context,
    tight_config,
)
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import get_query
from repro.obs.logs import LEVELS, JsonLogger
from repro.obs.registry import (
    FAMILIES,
    FamilySpec,
    MetricsRegistry,
    build_run_registry,
    exposition_families,
    run_families,
    serve_families,
)
from repro.obs.slo import SloTracker, quantile
from repro.runtime.registry import REGISTRY
from repro.runtime.tracing import (
    MODELED,
    WALL,
    Tracer,
    validate_prometheus_text,
)
from repro.serve import MatchServer, ServeConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``fast_``-prefixed string literals in src/ that are not metric
#: family names: the serve-family prefix constant and a figure-series
#: key. Anything else must be declared in FAMILIES.
LINT_ALLOWLIST = {"fast_serve", "fast_series"}


# -- declared families -------------------------------------------------


class TestFamilySpecs:
    def test_no_duplicate_names(self):
        names = [spec.name for spec in FAMILIES]
        assert len(names) == len(set(names))

    def test_counters_carry_total_suffix(self):
        for spec in FAMILIES:
            if spec.mtype == "counter":
                assert spec.suffix == "_total", spec.name
            else:
                assert spec.suffix == "", spec.name

    def test_histograms_declare_buckets(self):
        for spec in FAMILIES:
            assert (spec.buckets is not None) == (
                spec.mtype == "histogram"
            ), spec.name

    def test_prefixes(self):
        for spec in run_families():
            assert spec.name.startswith("fast_")
            assert not spec.name.startswith("fast_serve_")
        for spec in serve_families():
            assert spec.name.startswith("fast_serve_")


class TestMetricsRegistry:
    def test_undeclared_family_raises(self):
        reg = MetricsRegistry(serve_families())
        with pytest.raises(ValueError, match="not declared"):
            reg.inc("fast_serve_bogus")
        with pytest.raises(ValueError, match="not declared"):
            reg.set("fast_run_info", value=1.0)  # run family, serve reg

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry(run_families())
        with pytest.raises(ValueError, match="is a counter"):
            reg.observe("fast_embeddings_found", value=1.0)
        with pytest.raises(ValueError, match="is a histogram"):
            reg.inc("fast_stage_duration_seconds")

    def test_duplicate_declaration_raises(self):
        spec = FamilySpec("fast_x", "gauge", "x")
        with pytest.raises(ValueError, match="duplicate"):
            MetricsRegistry([spec, spec])

    def test_inc_set_value_reset(self):
        reg = MetricsRegistry(serve_families())
        labels = {"status": "OK"}
        assert reg.value("fast_serve_jobs", labels) is None
        reg.inc("fast_serve_jobs", labels)
        reg.inc("fast_serve_jobs", labels, value=2.0)
        assert reg.value("fast_serve_jobs", labels) == 3.0
        reg.set("fast_serve_queue_depth_peak", value=7.0)
        reg.set("fast_serve_queue_depth_peak", value=4.0)
        assert reg.value("fast_serve_queue_depth_peak") == 4.0
        reg.reset()
        assert reg.value("fast_serve_jobs", labels) is None
        reg.inc("fast_serve_jobs", labels)  # families stay declared
        assert reg.value("fast_serve_jobs", labels) == 1.0

    def test_render_grammar(self):
        reg = MetricsRegistry(serve_families())
        reg.inc("fast_serve_jobs", {"status": "OK"}, value=3)
        reg.set("fast_serve_slo_burn_rate", {"priority": "1"}, 0.25)
        text = reg.render()
        assert validate_prometheus_text(text) == []
        assert "# HELP fast_serve_jobs " in text
        assert "# TYPE fast_serve_jobs counter" in text
        assert 'fast_serve_jobs_total{status="OK"} 3' in text
        assert 'fast_serve_slo_burn_rate{priority="1"} 0.25' in text
        # Empty families are omitted entirely.
        assert "fast_serve_backlog_seconds" not in text

    def test_render_sorts_labels(self):
        reg = MetricsRegistry(serve_families())
        reg.set("fast_serve_slo_latency_seconds",
                {"quantile": "p99", "priority": "0"}, 1.0)
        assert ('fast_serve_slo_latency_seconds'
                '{priority="0",quantile="p99"} 1' in reg.render())

    def test_histogram_cumulative_buckets(self):
        spec = FamilySpec("fast_h", "histogram", "h",
                          buckets=(1.0, 2.0))
        reg = MetricsRegistry([spec])
        for v in (0.5, 1.5, 1.5, 5.0):
            reg.observe("fast_h", {"k": "a"}, v)
        text = reg.render()
        assert validate_prometheus_text(text) == []
        assert 'fast_h_bucket{k="a",le="1"} 1' in text
        assert 'fast_h_bucket{k="a",le="2"} 3' in text
        assert 'fast_h_bucket{k="a",le="+Inf"} 4' in text
        assert 'fast_h_sum{k="a"} 8.5' in text
        assert 'fast_h_count{k="a"} 4' in text

    def test_thread_safety(self):
        reg = MetricsRegistry(serve_families())

        def hammer():
            for _ in range(500):
                reg.inc("fast_serve_jobs", {"status": "OK"})
                reg.render()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("fast_serve_jobs", {"status": "OK"}) == 2000.0


class TestBuildRunRegistry:
    PAYLOAD = {
        "backend": "fast-share",
        "stages": {
            "build": {"modeled_seconds": 0.25, "wall_seconds": 0.5},
            "execute": {
                "modeled_seconds": 1.0, "wall_seconds": 2.0,
                "pool": "process", "workers": 4,
                "cst_plane": "shm", "pool_warm": True,
                "pool_spawned": 4, "pool_chunks": 9, "num_csts": 3,
            },
        },
        "totals": {"modeled_seconds": 1.25, "wall_seconds": 2.5},
        "health": {"retries": 2, "degraded": False,
                   "backoff_seconds": 0.1},
        "cache": {"cst": {"hits": 1, "misses": 2}},
    }

    def test_matches_legacy_emitter(self):
        from repro.runtime.tracing import metrics_to_prometheus

        counters = {"journal_appends": 3}
        text = build_run_registry(self.PAYLOAD, counters).render()
        assert text == metrics_to_prometheus(self.PAYLOAD, counters)
        assert validate_prometheus_text(text) == []
        assert 'fast_run_info{backend="fast-share"} 1' in text
        assert 'fast_pool_chunks_total{backend="fast-share"} 9' in text
        assert ('fast_tracer_events_total'
                '{backend="fast-share",name="journal_appends"} 3'
                in text)

    def test_exposition_families(self):
        text = build_run_registry(self.PAYLOAD).render()
        families = exposition_families(text)
        assert "fast_run_info" in families
        assert "fast_stage_duration_seconds" in families
        assert "fast_tracer_events" not in families  # no counters given
        assert exposition_families("") == set()


# -- metrics-name lint -------------------------------------------------


class TestMetricsNameLint:
    def test_declared_families_documented(self):
        """Every declared family appears (short name + suffix) in the
        docs/observability.md family tables."""
        docs = (REPO_ROOT / "docs" / "observability.md").read_text()
        for spec in FAMILIES:
            if spec.name.startswith("fast_serve_"):
                short = spec.name[len("fast_serve_"):]
            else:
                short = spec.name[len("fast_"):]
            assert f"`{short}{spec.suffix}`" in docs, (
                f"{spec.name} missing from docs/observability.md"
            )

    def test_source_literals_are_declared(self):
        """Every ``fast_*`` string literal in src/ is a declared
        family name (or an allowlisted non-metric)."""
        declared = {spec.name for spec in FAMILIES}
        declared |= {spec.name + spec.suffix for spec in FAMILIES}
        pattern = re.compile(r"[\"'](fast_[a-z0-9_]+)[\"']")
        offenders = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            for name in pattern.findall(path.read_text()):
                if name in declared or name in LINT_ALLOWLIST:
                    continue
                offenders.append(f"{path.name}: {name}")
        assert not offenders, (
            "undeclared fast_* literals (declare in "
            f"repro.obs.registry or allowlist): {offenders}"
        )


# -- structured logs ---------------------------------------------------


class TestJsonLogger:
    def test_disabled_without_sink(self):
        log = JsonLogger()
        assert not log.enabled
        log.info("event")  # no-op, no error
        log.close()

    def test_record_shape(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonLogger(path)
        assert log.enabled
        log.info("job_finished", request_id="r1", status="OK")
        log.warning("request_shed")
        log.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == [
            "job_finished", "request_shed",
        ]
        first, second = records
        assert first["level"] == "info"
        assert first["request_id"] == "r1"
        assert first["status"] == "OK"
        assert isinstance(first["ts"], float)
        # Every record carries the request_id key, null when unscoped.
        assert second["request_id"] is None

    def test_level_threshold(self):
        sink = io.StringIO()
        log = JsonLogger(sink, level="warning")
        log.debug("dropped")
        log.info("dropped")
        log.warning("kept")
        log.error("kept_too")
        events = [json.loads(line)["event"]
                  for line in sink.getvalue().splitlines()]
        assert events == ["kept", "kept_too"]

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            JsonLogger(io.StringIO(), level="loud")
        log = JsonLogger(io.StringIO())
        with pytest.raises(ValueError, match="unknown log level"):
            log.log("loud", "event")

    def test_borrowed_stream_not_closed(self):
        sink = io.StringIO()
        log = JsonLogger(sink)
        log.info("event")
        log.close()
        log.close()  # idempotent
        assert not sink.closed
        assert json.loads(sink.getvalue())["event"] == "event"

    def test_path_sink_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for n in range(2):
            log = JsonLogger(path)
            log.info(f"run{n}")
            log.close()
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["run0", "run1"]

    def test_levels_table(self):
        assert sorted(LEVELS, key=LEVELS.get) == [
            "debug", "info", "warning", "error",
        ]


# -- SLO tracking ------------------------------------------------------


class TestSloTracker:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window"):
            SloTracker(window=0)
        with pytest.raises(ValueError, match="budget"):
            SloTracker(budget=0.0)
        with pytest.raises(ValueError, match="budget"):
            SloTracker(budget=1.5)

    def test_quantile_convention(self):
        # Matches ServeReport.p99: ceil, 1-based (q=99 of one value
        # is that value).
        assert quantile([], 99) == 0.0
        assert quantile([3.0], 99) == 3.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 99) == 4.0

    def test_burn_rate_math(self):
        slo = SloTracker(target_s=1.0, budget=0.5)
        slo.observe(0, 0.5, "OK")        # hit
        slo.observe(0, 2.0, "OK")        # latency miss
        slo.observe(0, None, "SHED")     # completion miss
        slo.observe(0, 0.5, "DEGRADED")  # hit
        # 2 misses / 4 windowed, over budget 0.5 -> burn rate 1.0.
        assert slo.burn_rate(0) == 1.0
        # Quantiles only see completed requests' latencies.
        assert slo.quantile(0, 99) == 2.0
        assert slo.burn_rate(9) == 0.0  # unseen priority

    def test_window_rolls(self):
        slo = SloTracker(target_s=1.0, window=2, budget=1.0)
        slo.observe(0, None, "SHED")
        slo.observe(0, 0.1, "OK")
        slo.observe(0, 0.2, "OK")  # evicts the SHED miss
        assert slo.burn_rate(0) == 0.0
        snap = slo.snapshot()["0"]
        assert snap["window_jobs"] == 2
        assert snap["observed"] == 3

    def test_per_priority_targets(self):
        slo = SloTracker(target_s=1.0, targets={2: 0.1})
        slo.observe(0, 0.5, "OK")  # hit against default target
        slo.observe(2, 0.5, "OK")  # miss against the tight target
        assert slo.burn_rate(0) == 0.0
        assert slo.burn_rate(2) > 0.0
        assert slo.priorities() == [0, 2]

    def test_snapshot_shape(self):
        slo = SloTracker()
        slo.observe(1, 0.001, "OK")
        snap = slo.snapshot()
        assert set(snap) == {"1"}
        assert set(snap["1"]) == {
            "p50_modeled_latency_s", "p99_modeled_latency_s",
            "burn_rate", "target_s", "window_jobs", "observed",
        }


# -- live endpoint -----------------------------------------------------


def request_line(job_id, dataset="DG-MICRO", query="q0", **fields):
    return json.dumps(
        {"id": job_id, "dataset": dataset, "query": query, **fields}
    )


def live_config(**overrides):
    defaults = dict(
        capacity_s=1.0, harness=tight_config(), metrics_port=0
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def fetch(port, path):
    """(status, body) for one loopback GET; no exception on 4xx/5xx."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


class TestLiveEndpoint:
    def test_healthz_transitions_and_mid_run_scrape(self):
        server = MatchServer(live_config())
        assert server.http_port is not None
        seen = {}

        def source():
            # Runs on the serve thread after the loop entered
            # "serving": the mid-soak scrape, deterministic by
            # construction.
            seen["state"] = server.health_state
            seen["healthz"] = fetch(server.http_port, "/healthz")
            seen["metrics"] = fetch(server.http_port, "/metrics")
            for n in range(3):
                yield request_line(f"r{n}")

        assert server.health_state == "starting"
        code, body = fetch(server.http_port, "/healthz")
        assert code == 503
        assert json.loads(body)["state"] == "starting"

        sink = io.StringIO()
        report = server.run(source(), sink)
        assert report.statuses.get("OK", 0) + \
            report.statuses.get("DEGRADED", 0) + \
            report.statuses.get("SHED", 0) == 3

        assert seen["state"] == "serving"
        code, body = seen["healthz"]
        assert code == 200
        health = json.loads(body)
        assert health["state"] == "serving"
        assert set(health) == {"state", "jobs_done", "queued"}
        code, text = seen["metrics"]
        assert code == 200
        assert validate_prometheus_text(text) == []

        # Input hit EOF: draining answers 503 until close.
        assert server.health_state == "draining"
        code, body = fetch(server.http_port, "/healthz")
        assert code == 503
        assert json.loads(body)["state"] == "draining"

        # The live scrape's family set is a subset of the end-of-run
        # snapshot (same registry; more samples land by the end).
        end_text = server.metrics_text()
        assert validate_prometheus_text(end_text) == []
        assert exposition_families(text) <= exposition_families(end_text)
        assert "fast_serve_jobs_total" in end_text
        assert "fast_serve_slo_burn_rate" in end_text
        server.close()

    def test_concurrent_scrapes_during_soak(self):
        server = MatchServer(live_config())
        stop = threading.Event()
        scrapes, errors = [], []

        def scraper():
            while not stop.is_set():
                code, text = fetch(server.http_port, "/metrics")
                if code != 200:
                    errors.append(f"HTTP {code}")
                    continue
                errs = validate_prometheus_text(text)
                if errs:
                    errors.append(str(errs))
                scrapes.append(text)

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        try:
            sink = io.StringIO()
            lines = [request_line(f"r{n}") for n in range(20)]
            server.run(lines, sink)
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not errors
        assert scrapes  # the exporter answered while jobs ran
        server.close()

    def test_unknown_route_404(self):
        server = MatchServer(live_config())
        code, _ = fetch(server.http_port, "/nope")
        assert code == 404
        server.close()

    def test_no_port_no_server(self):
        server = MatchServer(live_config(metrics_port=None))
        assert server.http_port is None
        server.close()

    def test_slo_gauges_in_exposition(self):
        server = MatchServer(live_config())
        sink = io.StringIO()
        server.run(
            [request_line("r0", priority=1), request_line("r1")],
            sink,
        )
        text = server.metrics_text()
        server.close()
        assert validate_prometheus_text(text) == []
        for family in ("fast_serve_slo_latency_seconds",
                       "fast_serve_slo_burn_rate",
                       "fast_serve_slo_window_jobs"):
            assert family in exposition_families(text)
        assert ('fast_serve_slo_latency_seconds'
                '{priority="1",quantile="p99"}' in text)


# -- worker-span trace merge -------------------------------------------


def traced_run(workers):
    """One fast-share run through the warm process pool, traced."""
    config = tight_config(HarnessConfig(
        use_cache=False, trace=True, pool="process", workers=workers,
    ))
    ctx = make_context(config)
    try:
        result = REGISTRY.get("fast-share").run(
            ctx, get_query("q1").graph, load_dataset("DG-MINI").graph
        )
        payload = ctx.tracer.to_chrome_trace()
    finally:
        ctx.close()
    return result, payload


class TestWorkerSpanMerge:
    def test_modeled_clock_identical_across_worker_counts(self):
        result1, trace1 = traced_run(1)
        result4, trace4 = traced_run(4)
        assert result1.embeddings == result4.embeddings
        modeled1 = [ev for ev in trace1["traceEvents"]
                    if ev.get("cat") == MODELED]
        modeled4 = [ev for ev in trace4["traceEvents"]
                    if ev.get("cat") == MODELED]
        assert modeled1 == modeled4
        assert modeled1  # the filter actually selected something

        # The pooled run grew wall-only worker lanes and spans.
        names4 = {ev["name"] for ev in trace4["traceEvents"]
                  if ev.get("cat") == WALL}
        assert "pool-task" in names4
        lanes4 = {ev["args"]["name"]
                  for ev in trace4["traceEvents"]
                  if ev.get("name") == "thread_name"}
        assert any(lane.startswith("pool/worker") for lane in lanes4)
        for ev in trace4["traceEvents"]:
            if ev.get("name") == "pool-task":
                assert ev["cat"] == WALL
                assert "task" in ev["args"]
                assert "attempt" in ev["args"]

    def test_request_id_stamping(self):
        tracer = Tracer(enabled=True)
        tracer.span("lane", "before", 0.0, 1.0, clock=MODELED)
        tracer.set_request("r7")
        assert tracer.request_id == "r7"
        tracer.span("lane", "scoped", 1.0, 1.0, clock=MODELED)
        tracer.instant("lane", "mark", 1.5, clock=WALL)
        tracer.span("lane", "explicit", 2.0, 1.0, clock=MODELED,
                    request_id="other")
        tracer.set_request(None)
        tracer.span("lane", "after", 3.0, 1.0, clock=MODELED)
        by_name = {s.name: (s.args or {}) for s in tracer.spans}
        assert "request_id" not in by_name["before"]
        assert by_name["scoped"]["request_id"] == "r7"
        assert by_name["explicit"]["request_id"] == "other"
        assert "request_id" not in by_name["after"]
        assert tracer.instants[0].args["request_id"] == "r7"
