"""Tests for the tracing and metrics-exposition layer.

Four properties anchor the layer (docs/observability.md):

* **Schema** — exported Chrome trace-event JSON validates, loads as
  plain JSON, and carries both clock-domain processes.
* **Exactness** — per-stage span sums equal the ``RunMetrics`` totals
  on both clocks, for every FAST variant, multi-FPGA, and a faulted
  run; module-lane spans tile the kernel's cycle account exactly.
* **Determinism** — the modeled half of a trace is bit-identical at
  any ``--workers``/``pool`` (``--buffers`` changes the timeline's
  *shape* but stays deterministic per buffer count).
* **Neutrality** — enabling tracing changes no embedding counts,
  modeled seconds, or health bits; disabling it allocates no spans.

The module-lane layout is the paper's Fig. 5: FAST-SEP rounds run all
four kernel modules concurrently, FAST-BASIC strictly serializes them.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.harness import HarnessConfig, make_context
from repro.fpga.config import FpgaConfig
from repro.fpga.engine import VARIANTS, FastEngine
from repro.fpga.report import KernelReport
from repro.runtime.executor import overlap_schedule, overlap_timeline
from repro.runtime.registry import REGISTRY
from repro.runtime.tracing import (
    MODELED,
    MODULE_OF_LANE,
    WALL,
    Tracer,
    check_trace_invariants,
    metrics_to_prometheus,
    summarize_trace,
    trace_lanes,
    validate_chrome_trace,
    validate_prometheus_text,
)

FAST_BACKENDS = ("fast-dram", "fast-basic", "fast-task", "fast-sep")

TIGHT_FPGA = FpgaConfig(bram_bytes=48 * 1024, batch_size=64, max_ports=16)


def traced_run(backend, query, data, **kwargs):
    """One traced run; returns ``(outcome, ctx)``."""
    kwargs.setdefault("trace", True)
    kwargs.setdefault("use_cache", False)
    ctx = make_context(HarnessConfig(**kwargs))
    out = REGISTRY.get(backend).run(ctx, query, data)
    return out, ctx


def modeled_events(ctx):
    """Deterministic view of a trace's modeled clock domain."""
    return [
        (ev["name"], ev["ph"], ev["ts"], ev.get("dur"))
        for ev in ctx.tracer.to_chrome_trace()["traceEvents"]
        if ev.get("cat") == MODELED
    ]


class TestTracerCore:
    def test_disabled_by_default_and_allocation_free(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.span("t", "s", 0.0, 1.0)
        tracer.instant("t", "i", 0.0)
        tracer.count("c")
        tracer.on_journal_append({"type": "x"})
        assert tracer.spans == []
        assert tracer.instants == []
        assert tracer.counters == {}

    def test_enabled_records(self):
        tracer = Tracer(enabled=True)
        tracer.span("lane", "work", 1.0, 2.0, clock=MODELED, k=1)
        tracer.instant("lane", "tick", 0.5)
        tracer.count("events", 3)
        tracer.count("events")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].args == {"k": 1}
        assert tracer.counters == {"events": 4.0}

    def test_chrome_trace_schema_and_clock_processes(self):
        tracer = Tracer(enabled=True)
        tracer.span("a", "s1", 0.0, 1.0, clock=MODELED)
        tracer.span("a", "s2", 0.0, 1.0, clock=WALL)
        tracer.instant("b", "i1", 2.0)
        payload = tracer.to_chrome_trace()
        assert validate_chrome_trace(payload) == []
        names = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names == {"wall clock", "modeled clock"}
        # Same track name on different clocks -> different pids.
        lanes = trace_lanes(payload)
        assert (MODELED, "a") in lanes and (WALL, "a") in lanes

    def test_trace_microsecond_units(self):
        tracer = Tracer(enabled=True)
        tracer.span("a", "s", 1.5, 0.25, clock=MODELED)
        (ev,) = [
            e for e in tracer.to_chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        ]
        assert ev["ts"] == pytest.approx(1.5e6)
        assert ev["dur"] == pytest.approx(0.25e6)

    def test_write_chrome_trace_is_valid_json_file(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.span("a", "s", 0.0, 1.0)
        path = tmp_path / "out.trace.json"
        tracer.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_validator_rejects_malformed_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
        assert validate_chrome_trace(
            {"traceEvents": [
                {"ph": "X", "name": "s", "pid": 1, "tid": 1,
                 "ts": -1.0, "dur": 1.0},
            ]}
        ) != []

    def test_summarize_trace_ranks_by_duration(self):
        tracer = Tracer(enabled=True)
        tracer.span("lane", "slow", 0.0, 3.0, clock=MODELED)
        tracer.span("lane", "fast", 0.0, 1.0, clock=MODELED)
        rows = summarize_trace(tracer.to_chrome_trace(), top=1)
        assert len(rows) == 1
        assert rows[0][2] == "slow"


class TestOverlapSchedule:
    def test_timeline_matches_schedule_tail(self):
        segments = [(1.0, 2.0), (0.5, 3.0), (2.0, 0.5), (1.0, 1.0)]
        for buffers in (1, 2, 3, 8):
            schedule = overlap_schedule(segments, buffers)
            assert schedule[-1][3] == overlap_timeline(segments, buffers)

    def test_schedule_respects_resource_serialization(self):
        segments = [(1.0, 2.0), (0.5, 3.0), (2.0, 0.5)]
        schedule = overlap_schedule(segments, buffers=2)
        for i in range(1, len(schedule)):
            # Transfers serialize on the link, kernels on the device.
            assert schedule[i][0] >= schedule[i - 1][1] - 1e-12
            assert schedule[i][2] >= schedule[i - 1][3] - 1e-12
        for t_start, t_end, k_start, k_end in schedule:
            assert t_end >= t_start and k_start >= t_end - 1e-12

    def test_empty_schedule(self):
        assert overlap_schedule([], 2) == []


class TestModuleSpans:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_spans_tile_total_cycles_exactly(self, variant, micro_graph,
                                             queries):
        engine = FastEngine(TIGHT_FPGA, variant, trace_modules=True)
        from repro.cst.builder import build_cst

        cst = build_cst(queries[0].graph, micro_graph)
        report = engine.run(cst)
        assert report.module_spans
        assert max(end for _, _, end in report.module_spans) == (
            pytest.approx(report.total_cycles)
        )
        for lane, start, end in report.module_spans:
            assert lane in MODULE_OF_LANE
            assert 0.0 <= start < end

    def test_off_by_default_allocates_nothing(self, micro_graph, queries):
        from repro.cst.builder import build_cst

        cst = build_cst(queries[0].graph, micro_graph)
        report = FastEngine(TIGHT_FPGA, "sep").run(cst)
        assert report.module_spans is None

    def test_merge_shifts_onto_serial_clock(self):
        a = KernelReport(variant="sep", clock_mhz=300.0,
                         compute_cycles=100.0,
                         module_spans=[("generator_tv", 0.0, 100.0)])
        b = KernelReport(variant="sep", clock_mhz=300.0,
                         compute_cycles=50.0,
                         module_spans=[("generator_tv", 0.0, 50.0)])
        a.merge(b)
        assert a.module_spans == [
            ("generator_tv", 0.0, 100.0),
            ("generator_tv", 100.0, 150.0),
        ]
        assert a.total_cycles == 150.0

    def test_journal_roundtrip_preserves_spans(self):
        from repro.runtime.journal import report_from_dict, report_to_dict

        report = KernelReport(
            variant="sep", clock_mhz=300.0, compute_cycles=10.0,
            module_spans=[("load", 0.0, 4.0), ("synchronizer", 4.0, 10.0)],
        )
        back = report_from_dict(report_to_dict(report))
        assert back.module_spans == report.module_spans
        plain = KernelReport(variant="sep", clock_mhz=300.0)
        assert report_from_dict(report_to_dict(plain)).module_spans is None


class TestFigure5Layout:
    """The module lanes reproduce the paper's per-variant dataflow."""

    def _module_lanes(self, backend, query, data):
        _, ctx = traced_run(backend, query, data)
        lanes = trace_lanes(ctx.tracer.to_chrome_trace())
        mods = {}
        for (clock, track), events in lanes.items():
            if clock != MODELED or "/module/" not in track:
                continue
            lane = track.split("/")[-1]
            if lane in ("load", "flush"):
                continue
            mods[lane] = [(ev["ts"], ev["ts"] + ev["dur"]) for ev in events]
        return mods

    def test_sep_overlaps_all_four_modules(self, micro_graph, queries):
        mods = self._module_lanes("fast-sep", queries[0].graph, micro_graph)
        by_start: dict[float, set[str]] = {}
        for lane, spans in mods.items():
            for start, _ in spans:
                by_start.setdefault(round(start, 6), set()).add(lane)
        concurrent = max(
            (
                {MODULE_OF_LANE[lane] for lane in lanes}
                for lanes in by_start.values()
            ),
            key=len,
        )
        # All four Fig. 5 modules running in at least one round.
        assert concurrent == {
            "generator", "visited_validator", "edge_validator",
            "synchronizer",
        }

    def test_basic_serializes_all_modules(self, micro_graph, queries):
        mods = self._module_lanes(
            "fast-basic", queries[0].graph, micro_graph
        )
        spans = sorted(
            (start, end) for lane in mods.values() for start, end in lane
        )
        assert len(spans) > 4
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert next_start >= prev_end - 1e-9

    def test_task_overlaps_but_keeps_two_phases(self, micro_graph,
                                                queries):
        mods = self._module_lanes("fast-task", queries[0].graph,
                                  micro_graph)
        # Phase A: t_v generation and visited validation share starts.
        tv = {round(s, 6) for s, _ in mods.get("generator_tv", [])}
        visited = {round(s, 6) for s, _ in mods.get("visited_validator", [])}
        assert tv & visited
        # Phase B lanes never start with phase A in the same round:
        # every t_n span begins at or after its round's phase A ends.
        ends_a = sorted(
            max(e1, e2) for (_, e1), (_, e2)
            in zip(mods["generator_tv"], mods["visited_validator"])
        )
        starts_b = sorted(s for s, _ in mods.get("generator_tn", []))
        for start, end_a in zip(starts_b, ends_a):
            assert start >= end_a - 1e-9


class TestInvariants:
    """Span sums equal RunMetrics totals, for every execution shape."""

    @pytest.mark.parametrize("backend", [*FAST_BACKENDS, "multi-fpga"])
    def test_span_sums_equal_metrics(self, backend, micro_graph, queries):
        _, ctx = traced_run(backend, queries[0].graph, micro_graph)
        trace = ctx.tracer.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        assert check_trace_invariants(
            trace, ctx.current_metrics.to_payload()
        ) == []

    def test_span_sums_under_faults_and_buffers(self, micro_graph,
                                                queries):
        _, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph,
            fault_seed=11, workers=3, buffers=3,
        )
        trace = ctx.tracer.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        assert check_trace_invariants(
            trace, ctx.current_metrics.to_payload()
        ) == []

    def test_invariant_checker_catches_drift(self, micro_graph, queries):
        _, ctx = traced_run("fast-sep", queries[0].graph, micro_graph)
        payload = ctx.current_metrics.to_payload()
        payload["stages"]["execute"]["modeled_seconds"] *= 2.0
        assert check_trace_invariants(
            ctx.tracer.to_chrome_trace(), payload
        ) != []

    def test_overlap_timeline_surfaced_in_payload(self, micro_graph,
                                                  queries):
        # A *plain* (untraced) run carries the same overlap timeline
        # the trace draws — the two views agree by construction.
        _, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph,
            trace=False, buffers=3,
        )
        payload = ctx.current_metrics.to_payload()
        execute = payload["stages"]["execute"]
        assert "overlap_timeline" in execute
        assert 0.0 < execute["overlap_timeline"] <= execute["fpga_seconds"]

    def test_multi_fpga_overlap_timeline_per_device(self, mini_graph,
                                                    queries):
        ctx = make_context(HarnessConfig(
            use_cache=False, buffers=2, fpga=TIGHT_FPGA,
        ))
        REGISTRY.get("multi-fpga").run(ctx, queries[0].graph, mini_graph)
        execute = ctx.current_metrics.to_payload()["stages"]["execute"]
        timelines = execute["overlap_timeline"]
        assert isinstance(timelines, dict) and timelines
        assert all(v >= 0.0 for v in timelines.values())


class TestDeterminismAndNeutrality:
    @pytest.mark.parametrize("backend", ["fast-sep", "multi-fpga"])
    def test_modeled_trace_independent_of_workers(self, backend,
                                                  micro_graph, queries):
        base = None
        for workers in (1, 2, 4):
            _, ctx = traced_run(
                backend, queries[0].graph, micro_graph,
                workers=workers, buffers=2, fault_seed=11,
            )
            events = modeled_events(ctx)
            if base is None:
                base = events
                assert base  # the modeled domain is populated
            else:
                assert events == base

    def test_modeled_trace_deterministic_across_runs(self, micro_graph,
                                                     queries):
        runs = [
            modeled_events(
                traced_run(
                    "fast-sep", queries[0].graph, micro_graph,
                    buffers=3, fault_seed=7,
                )[1]
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("backend", [*FAST_BACKENDS, "multi-fpga"])
    def test_tracing_changes_nothing(self, backend, micro_graph, queries):
        results = []
        for trace in (False, True):
            out, ctx = traced_run(
                backend, queries[0].graph, micro_graph,
                trace=trace, fault_seed=11, workers=2, buffers=2,
            )
            results.append((
                out.embeddings,
                out.seconds,
                ctx.current_metrics.health.to_dict(),
            ))
        assert results[0] == results[1]

    def test_disabled_tracer_allocates_no_spans(self, micro_graph,
                                                queries):
        _, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph, trace=False,
        )
        assert not ctx.tracer.enabled
        assert ctx.tracer.spans == []
        assert ctx.tracer.instants == []
        assert ctx.tracer.counters == {}


class TestFaultAndJournalLanes:
    def test_fault_instants_on_faulted_run(self, micro_graph, queries):
        out, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph,
            fault_seed=11, fpga=TIGHT_FPGA,
        )
        health = ctx.current_metrics.health
        fault_instants = [
            i for i in ctx.tracer.instants if i.track == "faults"
        ]
        assert len(fault_instants) == len(health.events)
        assert all(i.clock == MODELED for i in fault_instants)

    def test_journal_appends_traced(self, tmp_path, micro_graph, queries):
        journal = tmp_path / "run.jsonl"
        _, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph,
            journal_path=str(journal), fpga=TIGHT_FPGA,
        )
        ctx.journal.close()
        assert ctx.tracer.counters.get("journal_appends", 0) > 0
        appends = [
            i for i in ctx.tracer.instants if i.track == "journal"
        ]
        assert appends and all(i.clock == WALL for i in appends)

    def test_resume_counts_replays(self, tmp_path, micro_graph, queries):
        journal = tmp_path / "run.jsonl"
        out, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph,
            journal_path=str(journal), fpga=TIGHT_FPGA,
        )
        ctx.journal.close()
        out2, ctx2 = traced_run(
            "fast-sep", queries[0].graph, micro_graph,
            resume_path=str(journal), fpga=TIGHT_FPGA,
        )
        ctx2.journal.close()
        assert out2.embeddings == out.embeddings
        assert ctx2.tracer.counters.get("journal_replays", 0) > 0


class TestPrometheus:
    def _exposition(self, micro_graph, queries, **kwargs):
        out, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph, **kwargs
        )
        return out, metrics_to_prometheus(
            ctx.current_metrics.to_payload(), ctx.tracer.counters
        )

    def test_exposition_parses(self, micro_graph, queries):
        _, text = self._exposition(micro_graph, queries)
        assert validate_prometheus_text(text) == []

    def test_exposition_covers_required_families(self, micro_graph,
                                                 queries):
        out, text = self._exposition(micro_graph, queries)
        assert (
            f'fast_embeddings_found_total{{backend="fast-sep"}} '
            f"{out.embeddings}"
        ) in text
        for needle in (
            "fast_stage_duration_seconds_bucket",
            "fast_stage_duration_seconds_sum",
            "fast_stage_duration_seconds_count",
            'stage="execute"',
            "fast_partitions_total",
            "fast_cache_events_total",
            "fast_run_seconds",
        ):
            assert needle in text, needle

    def test_exposition_under_faults_has_recovery_counters(
        self, micro_graph, queries
    ):
        _, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph,
            fault_seed=11, fpga=TIGHT_FPGA,
        )
        text = metrics_to_prometheus(
            ctx.current_metrics.to_payload(), ctx.tracer.counters
        )
        assert validate_prometheus_text(text) == []
        assert "fast_recovery_actions_total" in text
        assert "fast_backoff_seconds_total" in text

    def test_exposition_without_tracing(self, micro_graph, queries):
        # --metrics-out must work on an untraced run: the exposition
        # derives from the metrics payload, not from spans.
        _, ctx = traced_run(
            "fast-sep", queries[0].graph, micro_graph, trace=False,
        )
        text = metrics_to_prometheus(ctx.current_metrics.to_payload())
        assert validate_prometheus_text(text) == []
        assert "fast_embeddings_found_total" in text

    def test_validator_rejects_malformed_text(self):
        assert validate_prometheus_text("not a metric line!") != []
        assert validate_prometheus_text('m{bad-label="x"} 1') != []
        assert validate_prometheus_text("ok_metric 1.5\n") == []

    def test_histogram_buckets_are_cumulative_and_finite_sum(
        self, micro_graph, queries
    ):
        _, text = self._exposition(micro_graph, queries)
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("fast_stage_duration_seconds_bucket")
            and 'stage="execute"' in line and 'clock="modeled"' in line
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1.0
        assert math.isfinite(counts[-1])
