"""Fault injection, retry/backoff, and degradation ladder tests.

The central property (ISSUE 2 / docs/robustness.md): because every CST
partition is a complete, independently matchable search space, any
recoverable fault schedule leaves embedding counts bit-identical to
the fault-free run — for every FAST variant and the multi-FPGA
runner. The CI ``faults`` job re-runs this file across a seed matrix
via ``REPRO_FAULT_SEED``.
"""

from __future__ import annotations

import os

import pytest

from repro.common.errors import FatalDeviceError
from repro.fpga.config import FpgaConfig
from repro.ldbc.datasets import load_dataset
from repro.ldbc.queries import get_query
from repro.runtime.context import RunContext
from repro.runtime.faults import (
    DEFAULT_RATES,
    FAULT_KINDS,
    FaultPlan,
    HealthReport,
    RetryPolicy,
)
from repro.runtime.registry import REGISTRY

FAST_VARIANTS = (
    "fast-dram", "fast-basic", "fast-task", "fast-sep", "fast-share",
)

#: Seed matrix; CI appends one more via REPRO_FAULT_SEED.
SEEDS = [3, 5, 11]
_env_seed = os.environ.get("REPRO_FAULT_SEED")
if _env_seed is not None and int(_env_seed) not in SEEDS:
    SEEDS.append(int(_env_seed))

#: A device small enough that re-partitioning under tightened delta_S
#: actually has room to split (DG-MICRO CSTs are ~6-8 KB).
STRESS_FPGA = FpgaConfig(bram_bytes=8 * 1024, batch_size=128,
                         max_ports=32)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("DG-MICRO")


def run_backend(name, dataset, query="q0", *, fpga=None,
                fault_plan=None, retry_policy=None, **kwargs):
    ctx = RunContext(
        fpga=fpga or FpgaConfig(),
        fault_plan=fault_plan,
        retry_policy=retry_policy or RetryPolicy(),
    )
    q = get_query(query)
    out = REGISTRY.get(name).run(ctx, q.graph, dataset.graph, **kwargs)
    return out


class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan(seed=1, rates={"meteor_strike": 0.5})

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError, match="max_consecutive"):
            FaultPlan(seed=1, max_consecutive=0)

    def test_fires_is_pure(self):
        plan = FaultPlan(seed=9)
        for kind in FAULT_KINDS:
            a = plan.fires(kind, "partition", 4)
            b = plan.fires(kind, "partition", 4)
            assert a == b

    def test_fires_bounded_by_max_consecutive(self):
        plan = FaultPlan(seed=2, rates={"kernel_timeout": 1.0},
                         max_consecutive=3)
        for i in range(50):
            burst = plan.fires("kernel_timeout", "partition", i)
            assert 1 <= burst <= 3

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=5, rates={k: 0.0 for k in FAULT_KINDS})
        assert not plan.enabled
        for i in range(50):
            assert plan.fires("kernel_timeout", "partition", i) == 0

    def test_different_seeds_differ(self):
        hot = FaultPlan(seed=1, rates={"pcie_error": 0.5})
        schedules = {
            tuple(FaultPlan(seed=s, rates=hot.rates).fires(
                "pcie_error", "partition", i) for i in range(64))
            for s in range(8)
        }
        assert len(schedules) > 1

    def test_recoverable_under(self):
        assert FaultPlan(seed=1, max_consecutive=2).recoverable_under(
            RetryPolicy(max_retries=3))
        assert not FaultPlan(seed=1, max_consecutive=6).recoverable_under(
            RetryPolicy(max_retries=2))

    def test_dead_devices_explicit(self):
        plan = FaultPlan(seed=1, dead_devices={1})
        assert plan.device_dead(1)
        assert not plan.device_dead(0)
        assert plan.enabled


class TestRetryPolicy:
    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_backoff_grows_and_caps(self):
        pol = RetryPolicy(jitter=0.0)
        delays = [pol.backoff_seconds(7, a, "p", 0) for a in range(12)]
        assert delays == sorted(delays)
        assert delays[-1] == pol.backoff_max_s

    def test_backoff_jitter_bounded_and_deterministic(self):
        pol = RetryPolicy()
        for attempt in range(4):
            d1 = pol.backoff_seconds(3, attempt, "p", 1)
            d2 = pol.backoff_seconds(3, attempt, "p", 1)
            assert d1 == d2
            base = min(
                pol.backoff_base_s * pol.backoff_multiplier ** attempt,
                pol.backoff_max_s,
            )
            assert base * (1 - pol.jitter) <= d1 <= base * (1 + pol.jitter)


class TestHealthReport:
    def test_retries_alone_do_not_degrade(self):
        from repro.runtime.faults import FaultEvent

        h = HealthReport()
        h.record(FaultEvent("pcie_error", ("partition", 0), 0, "retry",
                            backoff_seconds=1e-4))
        assert h.retries == 1
        assert not h.degraded
        assert h.to_dict()["backoff_seconds"] == pytest.approx(1e-4)

    def test_ladder_actions_degrade(self):
        from repro.runtime.faults import FaultEvent

        for action in ("repartition", "cpu_fallback", "failover"):
            h = HealthReport()
            h.record(FaultEvent("kernel_timeout", (), 0, action))
            assert h.degraded, action


class TestCountsInvariant:
    """Embedding counts are exact under any recoverable fault plan."""

    @pytest.mark.parametrize("backend", FAST_VARIANTS + ("multi-fpga",))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_counts_match_fault_free(self, dataset, backend, seed):
        baseline = run_backend(backend, dataset)
        plan = FaultPlan(seed=seed)  # default noisy-but-recoverable
        faulty = run_backend(backend, dataset, fault_plan=plan)
        assert faulty.embeddings == baseline.embeddings
        assert faulty.verdict == "OK"

    @pytest.mark.parametrize("query", ["q0", "q2"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_counts_exact_through_full_ladder(self, dataset, query,
                                              seed):
        """Even an *unrecoverable* plan stays exact: exhausted
        partitions re-partition under tightened delta_S and finally
        fall back to the CPU matcher."""
        baseline = run_backend("fast-sep", dataset, query,
                               fpga=STRESS_FPGA)
        plan = FaultPlan(seed=seed, rates={"kernel_timeout": 0.5},
                         max_consecutive=6)
        out = run_backend("fast-sep", dataset, query, fpga=STRESS_FPGA,
                          fault_plan=plan,
                          retry_policy=RetryPolicy(max_retries=2))
        assert out.embeddings == baseline.embeddings
        health = out.health
        assert health["degraded"]
        assert health["repartitions"] + health["fallbacks"] > 0

    def test_happy_path_identical_to_zero_rate_plan(self, dataset):
        off = run_backend("fast-share", dataset)
        zero = run_backend(
            "fast-share", dataset,
            fault_plan=FaultPlan(
                seed=3, rates={k: 0.0 for k in FAULT_KINDS}),
        )
        assert zero.embeddings == off.embeddings
        assert zero.seconds == off.seconds  # byte-identical model time
        assert zero.health["retries"] == 0
        assert not zero.health["fault_events"]


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["fast-sep", "fast-share"])
    def test_same_seed_same_event_log(self, dataset, backend):
        plan = FaultPlan(seed=13)
        a = run_backend(backend, dataset, fault_plan=plan)
        b = run_backend(backend, dataset, fault_plan=plan)
        assert a.health == b.health
        assert a.health["fault_events"] == b.health["fault_events"]
        assert a.seconds == b.seconds

    def test_different_seed_different_log(self, dataset):
        logs = set()
        for seed in range(6):
            plan = FaultPlan(seed=seed, rates={"pcie_error": 0.6})
            out = run_backend("fast-sep", dataset, "q2",
                              fpga=STRESS_FPGA, fault_plan=plan)
            logs.add(str(out.health["fault_events"]))
        assert len(logs) > 1

    def test_retries_accounted(self, dataset):
        plan = FaultPlan(seed=3, rates={"pcie_error": 0.6})
        out = run_backend("fast-sep", dataset, "q2", fpga=STRESS_FPGA,
                          fault_plan=plan)
        health = out.health
        retry_events = [e for e in health["fault_events"]
                        if e["action"] == "retry"]
        assert health["retries"] == len(retry_events)
        assert health["backoff_seconds"] == pytest.approx(
            sum(e["backoff_seconds"] for e in health["fault_events"])
        )


class TestMultiFpgaFailover:
    def test_dead_device_redistributes(self, dataset):
        baseline = run_backend("multi-fpga", dataset, "q2",
                               fpga=STRESS_FPGA, num_devices=3)
        plan = FaultPlan(seed=1, rates={k: 0.0 for k in FAULT_KINDS},
                         dead_devices={0})
        out = run_backend("multi-fpga", dataset, "q2",
                          fpga=STRESS_FPGA, fault_plan=plan,
                          num_devices=3)
        assert out.embeddings == baseline.embeddings
        health = out.health
        assert health["degraded"]
        assert health["failovers"] > 0
        assert health["device_status"]["0"] == "dead"
        assert health["device_status"]["1"] == "ok"

    def test_all_devices_dead_is_fatal(self, dataset):
        plan = FaultPlan(seed=1, dead_devices={0, 1})
        with pytest.raises(FatalDeviceError, match="no survivor"):
            run_backend("multi-fpga", dataset, fault_plan=plan,
                        num_devices=2)


class TestHarnessIntegration:
    def test_harness_config_builds_plan(self):
        from repro.experiments.harness import HarnessConfig, make_context

        ctx = make_context(HarnessConfig(
            fault_seed=11,
            fault_rates=(("kernel_timeout", 0.3),),
            max_retries=5,
        ))
        assert ctx.fault_plan is not None
        assert ctx.fault_plan.seed == 11
        assert ctx.fault_plan.rates == {"kernel_timeout": 0.3}
        assert ctx.retry_policy.max_retries == 5

    def test_harness_default_is_fault_free(self):
        from repro.experiments.harness import HarnessConfig, make_context

        assert make_context(HarnessConfig()).fault_plan is None

    def test_default_rates_cover_all_kinds(self):
        assert set(FAULT_KINDS) <= set(DEFAULT_RATES)
