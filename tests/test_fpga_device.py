"""Tests for the simulated device: config, pipeline calculus, FIFOs,
and the analytical cycle equations."""

from __future__ import annotations

import pytest

from repro.common.errors import DeviceError
from repro.fpga.config import FpgaConfig
from repro.fpga.cycles import (
    l_basic,
    l_sep,
    l_serial,
    l_task,
    predicted_speedup_sep_over_task,
    predicted_speedup_task_over_basic,
)
from repro.fpga.fifo import Fifo
from repro.fpga.pipeline import (
    chained,
    overlapped,
    pipelined_cycles,
    serial_cycles,
)
from repro.query.query_graph import as_query


class TestConfig:
    def test_defaults_valid(self):
        cfg = FpgaConfig()
        assert cfg.clock_mhz == 300.0
        assert cfg.dram_latency > cfg.bram_latency

    def test_depth_sums(self):
        cfg = FpgaConfig()
        assert cfg.depth_front == cfg.l1 + cfg.l2 + cfg.l3 + cfg.l4
        assert cfg.depth_tasks == cfg.l5 + cfg.l6

    def test_invalid_configs_rejected(self):
        with pytest.raises(DeviceError):
            FpgaConfig(clock_mhz=0)
        with pytest.raises(DeviceError):
            FpgaConfig(batch_size=0)
        with pytest.raises(DeviceError):
            FpgaConfig(dram_latency=0, bram_latency=1)
        with pytest.raises(DeviceError):
            FpgaConfig(max_ports=0)
        with pytest.raises(DeviceError):
            FpgaConfig(l3=0)

    def test_buffer_sizing_follows_paper(self, queries):
        cfg = FpgaConfig()
        q = as_query(queries[0].graph)
        n = q.num_vertices
        assert cfg.buffer_bytes(q) == (n - 1) * cfg.batch_size * n * 4

    def test_cst_budget_positive(self, queries):
        cfg = FpgaConfig()
        q = as_query(queries[0].graph)
        assert cfg.cst_budget_bytes(q) > 0

    def test_cst_budget_overflow_rejected(self, queries):
        cfg = FpgaConfig(bram_bytes=1024)
        q = as_query(queries[0].graph)
        with pytest.raises(DeviceError, match="batch_size"):
            cfg.cst_budget_bytes(q)

    def test_partition_limits(self, queries):
        cfg = FpgaConfig()
        q = as_query(queries[0].graph)
        limits = cfg.partition_limits(q)
        assert limits.max_bytes == cfg.cst_budget_bytes(q)
        assert limits.max_degree == cfg.max_ports

    def test_time_conversion(self):
        cfg = FpgaConfig(clock_mhz=300)
        assert cfg.cycles_to_seconds(3e8) == pytest.approx(1.0)

    def test_load_and_flush_cycles(self):
        cfg = FpgaConfig()
        assert cfg.load_cycles(0) == 0
        assert cfg.load_cycles(1) == cfg.dram_latency + 1
        assert cfg.flush_cycles(cfg.flush_bytes_per_cycle * 10) == (
            cfg.dram_latency + 10
        )

    def test_pcie_seconds(self):
        cfg = FpgaConfig(pcie_gbytes_per_sec=8.0)
        assert cfg.pcie_seconds(8e9) == pytest.approx(1.0)


class TestPipelineCalculus:
    def test_pipelined_zero_iterations_free(self):
        assert pipelined_cycles(0, 5) == 0

    def test_pipelined_formula(self):
        assert pipelined_cycles(100, 4) == 4 + 99 + 1

    def test_pipelined_ii(self):
        assert pipelined_cycles(10, 3, ii=2) == 3 + 18 + 1

    def test_serial_formula(self):
        assert serial_cycles(10, 7) == 70

    def test_serial_slower_than_pipelined(self):
        assert serial_cycles(1000, 5) > pipelined_cycles(1000, 5)

    def test_invalid_parameters(self):
        with pytest.raises(DeviceError):
            pipelined_cycles(-1, 3)
        with pytest.raises(DeviceError):
            pipelined_cycles(1, 0)
        with pytest.raises(DeviceError):
            serial_cycles(1, 0)

    def test_overlapped_is_max(self):
        assert overlapped(3, 9, 5) == 9
        assert overlapped() == 0

    def test_chained_is_sum(self):
        assert chained(3, 9, 5) == 17


class TestFifo:
    def test_push_pop_order(self):
        f = Fifo("t", 4)
        f.push(1)
        f.push(2)
        assert f.pop() == 1
        assert f.pop() == 2

    def test_peak_tracking(self):
        f = Fifo("t", 4)
        for i in range(3):
            f.push(i)
        f.pop()
        assert f.peak == 3
        assert f.total_pushed == 3

    def test_overflow_raises(self):
        f = Fifo("t", 1)
        f.push(1)
        with pytest.raises(DeviceError, match="overflow"):
            f.push(2)

    def test_underflow_raises(self):
        with pytest.raises(DeviceError, match="underflow"):
            Fifo("t", 1).pop()

    def test_drain(self):
        f = Fifo("t", 4)
        f.push(1)
        f.push(2)
        assert f.drain() == [1, 2]
        assert f.is_empty

    def test_bad_depth(self):
        with pytest.raises(DeviceError):
            Fifo("t", 0)


class TestCycleEquations:
    CFG = FpgaConfig()

    def test_ordering_serial_basic_task_sep(self):
        n, m = 100_000, 80_000
        assert (
            l_serial(self.CFG, n, m)
            > l_basic(self.CFG, n, m)
            > l_task(self.CFG, n, m)
            > l_sep(self.CFG, n, m)
        )

    def test_zero_workload(self):
        for fn in (l_serial, l_basic, l_task, l_sep):
            assert fn(self.CFG, 0, 0) == 0.0

    def test_task_speedup_capped_at_two(self):
        for n, m in [(1000, 0), (1000, 1000), (1000, 5000), (1000, 400)]:
            assert predicted_speedup_task_over_basic(n, m) <= 2.0 + 1e-9

    def test_task_speedup_approaches_two_when_m_dominates(self):
        assert predicted_speedup_task_over_basic(1, 10**9) == pytest.approx(
            2.0, rel=1e-6
        )

    def test_sep_speedup_capped_at_1_5(self):
        for n, m in [(1000, 0), (1000, 1000), (1000, 9000)]:
            assert predicted_speedup_sep_over_task(n, m) <= 1.5 + 1e-9

    def test_sep_speedup_is_1_5_when_m_equals_n(self):
        assert predicted_speedup_sep_over_task(1000, 1000) == pytest.approx(
            1.5
        )

    def test_eq2_shape(self):
        # L_basic ~ 4N + 2M for N_o >> depths.
        n, m = 10**6, 10**6
        assert l_basic(self.CFG, n, m) == pytest.approx(
            4 * n + 2 * m, rel=0.05
        )

    def test_speedup_one_on_empty(self):
        assert predicted_speedup_task_over_basic(0, 0) == 1.0
        assert predicted_speedup_sep_over_task(0, 0) == 1.0
