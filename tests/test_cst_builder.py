"""Tests for CST construction (Algorithm 1), including the soundness
property of Theorem 1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reference import reference_embeddings
from repro.cst.builder import build_cst
from repro.graph.generators import random_connected_query, random_labeled_graph
from repro.host.cpu_matcher import cst_embeddings
from repro.ldbc.queries import all_queries, get_query
from repro.query.spanning_tree import build_bfs_tree


class TestConstruction:
    def test_candidates_have_matching_labels(self, micro_graph):
        q = get_query("q1")
        cst = build_cst(q.graph, micro_graph)
        for u in range(q.graph.num_vertices):
            want = q.graph.label(u)
            for v in cst.candidates[u]:
                assert micro_graph.label(int(v)) == want

    def test_candidates_meet_degree_filter(self, micro_graph):
        q = get_query("q6")
        cst = build_cst(q.graph, micro_graph)
        qg = cst.query
        for u in range(qg.num_vertices):
            for v in cst.candidates[u]:
                assert micro_graph.degree(int(v)) >= qg.degree(u)

    def test_candidate_edges_are_data_edges(self, micro_graph):
        q = get_query("q2")
        cst = build_cst(q.graph, micro_graph)
        for (a, b), adj in cst.adjacency.items():
            for i in range(adj.num_rows):
                va = cst.vertex_at(a, i)
                for j in adj.row(i)[:10]:
                    vb = cst.vertex_at(b, int(j))
                    assert micro_graph.has_edge(va, vb)

    def test_explicit_root(self, micro_graph):
        q = get_query("q0")
        cst = build_cst(q.graph, micro_graph, root=2)
        assert cst.tree.root == 2

    def test_explicit_tree(self, micro_graph):
        q = get_query("q0")
        tree = build_bfs_tree(q.graph, 1)
        cst = build_cst(q.graph, micro_graph, tree=tree)
        assert cst.tree is tree

    def test_conflicting_root_and_tree_rejected(self, micro_graph):
        from repro.common.errors import CSTError
        q = get_query("q0")
        tree = build_bfs_tree(q.graph, 1)
        with pytest.raises(CSTError):
            build_cst(q.graph, micro_graph, root=0, tree=tree)

    def test_tree_only_index(self, micro_graph):
        q = get_query("q6")  # has three non-tree edges
        cpi = build_cst(q.graph, micro_graph, include_non_tree=False)
        assert cpi.tree_only
        cpi.check_consistency()
        tree_pairs = {
            frozenset(e) for e in cpi.tree.tree_edges()
        }
        for a, b in cpi.adjacency:
            assert frozenset((a, b)) in tree_pairs

    def test_orphan_prune_only_shrinks(self, micro_graph):
        q = get_query("q3")
        pruned = build_cst(q.graph, micro_graph, prune_orphans=True)
        unpruned = build_cst(q.graph, micro_graph, prune_orphans=False)
        for u in range(q.graph.num_vertices):
            assert set(pruned.candidates[u].tolist()) <= set(
                unpruned.candidates[u].tolist()
            )

    def test_orphan_prune_preserves_soundness(self, micro_graph):
        q = get_query("q3")
        pruned = build_cst(q.graph, micro_graph, prune_orphans=True)
        unpruned = build_cst(q.graph, micro_graph, prune_orphans=False)
        assert sorted(cst_embeddings(pruned)) == sorted(
            cst_embeddings(unpruned)
        )

    def test_empty_search_space(self):
        # Query label absent from the data graph -> empty CST.
        data = random_labeled_graph(30, 60, 2, seed=1)
        from repro.graph.graph import Graph
        q = Graph.from_edges(2, [(0, 1)], [7, 7])
        cst = build_cst(q, data)
        assert cst.is_empty()
        assert cst_embeddings(cst) == []


class TestTheorem1:
    """Theorem 1: all embeddings are computable from the CST alone."""

    def test_benchmark_queries_on_micro(self, micro_graph):
        for q in all_queries():
            cst = build_cst(q.graph, micro_graph)
            got = sorted(cst_embeddings(cst))
            want = sorted(reference_embeddings(q.graph, micro_graph))
            assert got == want, q.name

    @settings(max_examples=20, deadline=None)
    @given(
        data_seed=st.integers(0, 10_000),
        query_seed=st.integers(0, 10_000),
        qn=st.integers(3, 6),
    )
    def test_random_graphs_property(self, data_seed, query_seed, qn):
        data = random_labeled_graph(40, 160, 3, seed=data_seed)
        qm = min(qn * (qn - 1) // 2, qn + 2)
        query = random_connected_query(qn, qm, 3, seed=query_seed)
        cst = build_cst(query, data)
        cst.check_consistency()
        got = sorted(cst_embeddings(cst))
        want = sorted(reference_embeddings(query, data))
        assert got == want

    @settings(max_examples=10, deadline=None)
    @given(root=st.integers(0, 3), data_seed=st.integers(0, 100))
    def test_soundness_independent_of_root(self, root, data_seed):
        data = random_labeled_graph(35, 140, 3, seed=data_seed)
        query = get_query("q0").graph  # 4 vertices
        # Remap labels into the generated alphabet so candidates exist.
        from repro.graph.graph import Graph
        labels = [int(lab) % 3 for lab in query.labels]
        query = Graph(query.indptr, query.indices, np.asarray(labels))
        cst = build_cst(query, data, root=root)
        got = sorted(cst_embeddings(cst))
        want = sorted(reference_embeddings(query, data))
        assert got == want
