"""Tests for the on-chip resource estimator."""

from __future__ import annotations

import pytest

from repro.fpga.config import FpgaConfig
from repro.fpga.resources import (
    U200_BRAM36,
    ResourceEstimate,
    estimate_resources,
    resource_table,
)
from repro.ldbc.queries import get_query
from repro.query.query_graph import as_query


@pytest.fixture(scope="module")
def query():
    return as_query(get_query("q7").graph)


class TestResourceEstimate:
    def test_variant_logic_ordering(self, query):
        cfg = FpgaConfig()
        ests = {
            v: estimate_resources(cfg, query, v)
            for v in ("basic", "task", "sep")
        }
        # Each optimisation spends more logic: basic < task < sep.
        assert ests["basic"].luts < ests["task"].luts < ests["sep"].luts
        assert ests["basic"].fifos == 0
        assert ests["sep"].fifos > ests["task"].fifos

    def test_bram_independent_of_variant(self, query):
        cfg = FpgaConfig()
        blocks = {
            estimate_resources(cfg, query, v).bram_blocks
            for v in ("dram", "basic", "task", "sep")
        }
        assert len(blocks) == 1

    def test_more_ports_more_logic_and_bram(self, query):
        few = estimate_resources(FpgaConfig(max_ports=16), query)
        many = estimate_resources(FpgaConfig(max_ports=128), query)
        assert many.luts > few.luts
        assert many.bram_blocks >= few.bram_blocks

    def test_bigger_batch_more_fifo_lutram(self, query):
        small = estimate_resources(FpgaConfig(batch_size=64), query, "sep")
        large = estimate_resources(FpgaConfig(batch_size=2048), query,
                                   "sep")
        assert large.luts > small.luts

    def test_default_config_fits_u200(self, query):
        est = estimate_resources(FpgaConfig(), query, "sep")
        assert est.fits_u200()

    def test_oversized_config_overflows(self, query):
        huge = FpgaConfig(bram_bytes=64 * 1024 * 1024, max_ports=256)
        est = estimate_resources(huge, query, "sep")
        assert est.bram_blocks > U200_BRAM36
        assert not est.fits_u200()

    def test_utilisation_fields(self, query):
        est = estimate_resources(FpgaConfig(), query)
        util = est.utilisation()
        assert set(util) == {"bram", "lut", "ff"}
        assert all(v > 0 for v in util.values())

    def test_table_renders(self, query):
        text = resource_table(FpgaConfig(), query)
        assert "estimated U200 utilisation" in text
        for variant in ("dram", "basic", "task", "sep"):
            assert variant in text

    def test_estimate_is_frozen(self, query):
        est = estimate_resources(FpgaConfig(), query)
        assert isinstance(est, ResourceEstimate)
        with pytest.raises(AttributeError):
            est.luts = 0
